(** The hierarchical correlation tree's root level (scale-out, §6 outlook).

    A cluster-sized deployment cannot funnel every record to one
    correlator. The hierarchy splits the work into three levels:

    - {e level 0} — per-host agents run a bounded partial-correlation
      pass ({!Partial}) and ship reduced frames plus an unresolved-
      boundary table ({!Trace.Boundary});
    - {e level 1} — N collector shards, each owning a partition of the
      {e entry connections} (in the cluster preset: of the service
      replicas), run {!Online} over the partial feeds of their partition
      only;
    - {e level 2} — the root splices the shards' finished paths into the
      global sequence and serves patterns and latency breakdowns.

    Entry flows never span partitions, so every causal path completes
    inside exactly one shard and the root-level merge is a pure re-keying
    splice — the same id-rewriting {!Shard} uses to stitch per-epoch
    engines back into the serial id sequence ({!Cag.Builder.renumber}).
    This module is that root level: the canonical order, the splice, the
    shard-to-root wire codec, and the digest that makes "hierarchical
    {e equals} monolithic" checkable as string equality. *)

val compare_paths : Cag.t -> Cag.t -> int
(** The canonical global order on causal paths: root (BEGIN) timestamp,
    then root context, then end timestamp, then size, then pattern
    signature. Replica entry nodes have disjoint contexts, so the order
    is total on any real cluster feed and independent of which shard a
    path completed in. *)

val canonicalize : ?first_id:int -> Cag.t list -> Cag.t list
(** Sort into canonical order and re-key [cag_id]s to consecutive
    positions from [first_id] (default 0) via {!Cag.Builder.renumber} —
    the ids are rewritten in place. Applying this to both a spliced
    shard output and a monolithic result makes their digests comparable
    byte-for-byte. *)

val splice : Cag.t list list -> Cag.t list
(** Merge per-shard path lists into the canonical global sequence:
    [splice shards = canonicalize (List.concat shards)]. *)

val render : finished:Cag.t list -> deformed:Cag.t list -> string
(** The digest preimage, using the [cag_id]s as stored: path counts,
    every {!Pattern} with its member ids, component-latency percentages
    and end-to-end tail percentiles ([%.9f] — any drift in a breakdown
    changes the bytes). {!Shard.digest} renders the same bytes for a
    monolithic {!Correlator.result}. *)

val digest : finished:Cag.t list -> deformed:Cag.t list -> string
(** [render] after {!canonicalize} of both lists (finished first, then
    deformed, one id space), hex-digested. Equal digests mean equal path
    populations, patterns and breakdowns. Note the in-place re-keying of
    [cag_id]s, as in {!canonicalize}. *)

val digest_result : Correlator.result -> string
(** {!digest} of a monolithic result — the comparison baseline for a
    hierarchical run over the same feed. *)

(** {1 Shard-to-root wire format (PTH1)}

    What a level-1 shard ships upward: its completed paths, re-encoded
    compactly. This is the volume the root actually ingests — the
    feed-reduction figures in the [hierarchy] bench compare its size
    against the raw record volume. The codec is lossy exactly where
    aggregation permits: per-vertex source provenance (bundle
    back-links) stays in the shard.

    Everything repeated is interned in first-use order — strings (hosts,
    programs), contexts, endpoint quadruples — and each vertex packs its
    activity kind with its parent-edge shape into one byte (a valid CAG
    vertex has at most a context parent and a message parent, in either
    order). Timestamps are signed deltas along the vertex sequence;
    parent references are small back-indices:

    {v
    magic  "PTH1" (4 bytes)
    nstr   uvarint, then nstr strings (uvarint length + bytes)
    nctx   uvarint, then nctx of: host-sid program-sid pid tid (uvarint)
    nflow  uvarint, then nflow of: src_ip src_port dst_ip dst_port (uvarint)
    npath  uvarint
    path*  cag_id uvarint
           flags  byte: bit0 finished, bit1 deformed
           nv     uvarint
           vertex* packed byte: bits0-1 activity kind,
                                bits2-4 parents (ctx | msg | ctx,msg |
                                                 msg,ctx | none)
                   parent back-index uvarint per parent (i - parent_pos)
                   ts varint (delta from previous vertex; first absolute)
                   ctx-index uvarint, flow-index uvarint, size uvarint
    v} *)

val encode_paths : Cag.t list -> string
(** One PTH1 message holding the given paths (finished or deformed;
    flags travel per path). *)

val decode_paths : string -> (Cag.t list, string) result
(** Rebuild the paths from a PTH1 message. Round-trips everything
    {!render} and {!Pattern}/{!Aggregate}/{!Latency} read: vertices in
    causal order, activities, edges, finished/deformed flags, ids. *)
