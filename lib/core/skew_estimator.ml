module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time

type estimate = { host : string; offset : Sim_time.span; pairs_used : int }

type t = {
  reference : string;
  by_host : (string, estimate) Hashtbl.t;
  pair_samples : (string * string, int) Hashtbl.t;
}

(* min observed (recv_ts - send_ts) per ordered (src_host, dst_host). *)
let collect_mins cags =
  let mins : (string * string, Sim_time.span * int) Hashtbl.t = Hashtbl.create 16 in
  let note src dst span =
    let key = (src, dst) in
    match Hashtbl.find_opt mins key with
    | Some (m, n) ->
        Hashtbl.replace mins key
          ((if Sim_time.compare_span span m < 0 then span else m), n + 1)
    | None -> Hashtbl.replace mins key (span, 1)
  in
  List.iter
    (fun cag ->
      List.iter
        (fun (parent, kind, child) ->
          match kind with
          | Cag.Message_edge ->
              let src = (parent : Cag.vertex).Cag.activity.Activity.context.host in
              let dst = (child : Cag.vertex).Cag.activity.Activity.context.host in
              if not (String.equal src dst) then
                note src dst
                  (Sim_time.diff child.Cag.activity.Activity.timestamp
                     parent.Cag.activity.Activity.timestamp)
          | Cag.Context_edge -> ())
        (Cag.edges cag))
    cags;
  mins

let first_host cags =
  match cags with
  | cag :: _ -> Some (Cag.root cag).Cag.activity.Activity.context.host
  | [] -> None

let estimate ?reference cags =
  let mins = collect_mins cags in
  let hosts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (a, b) _ ->
      Hashtbl.replace hosts a ();
      Hashtbl.replace hosts b ())
    mins;
  let reference =
    match reference with
    | Some r -> r
    | None -> ( match first_host cags with Some h -> h | None -> "?")
  in
  Hashtbl.replace hosts reference ();
  (* Bidirectional pairs give a relative offset under the symmetric-minimum
     assumption. *)
  let theta : (string * string, Sim_time.span) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) (m_ab, _) ->
      match Hashtbl.find_opt mins (b, a) with
      | Some (m_ba, _) ->
          (* offset_b - offset_a = (m_ab - m_ba) / 2 *)
          Hashtbl.replace theta (a, b) (Sim_time.span_scale 0.5 (Sim_time.span_sub m_ab m_ba))
      | None -> ())
    mins;
  let by_host = Hashtbl.create 8 in
  Hashtbl.replace by_host reference { host = reference; offset = Sim_time.span_zero; pairs_used = 0 };
  (* BFS over the bidirectional-pair graph from the reference, driven by a
     sorted edge list: with inconsistent cycles the first-visit offset
     depends on traversal order, so hash order would make the result vary
     across runs. *)
  let edges =
    Hashtbl.fold (fun key th acc -> (key, th) :: acc) theta []
    |> List.sort (fun ((a1, b1), _) ((a2, b2), _) ->
           match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c)
  in
  let queue = Queue.create () in
  Queue.push reference queue;
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    let base = (Hashtbl.find by_host a).offset in
    List.iter
      (fun ((x, y), th) ->
        let visit host offset =
          match Hashtbl.find_opt by_host host with
          | Some e -> Hashtbl.replace by_host host { e with pairs_used = e.pairs_used + 1 }
          | None ->
              Hashtbl.replace by_host host { host; offset; pairs_used = 1 };
              Queue.push host queue
        in
        if String.equal x a then visit y (Sim_time.span_add base th)
        else if String.equal y a then visit x (Sim_time.span_sub base th))
      edges
  done;
  (* Hosts with no usable pair keep offset 0. *)
  Hashtbl.iter
    (fun host () ->
      if not (Hashtbl.mem by_host host) then
        Hashtbl.replace by_host host { host; offset = Sim_time.span_zero; pairs_used = 0 })
    hosts;
  let pair_samples = Hashtbl.create 16 in
  Hashtbl.iter (fun key (_, n) -> Hashtbl.replace pair_samples key n) mins;
  { reference; by_host; pair_samples }

let offsets t =
  let all = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_host [] in
  let others =
    List.filter (fun e -> not (String.equal e.host t.reference)) all
    |> List.sort (fun a b -> String.compare a.host b.host)
  in
  Hashtbl.find t.by_host t.reference :: others

let offset_of t host =
  match Hashtbl.find_opt t.by_host host with
  | Some e -> e.offset
  | None -> Sim_time.span_zero

let samples t =
  Hashtbl.fold (fun (a, b) n acc -> (a, b, n) :: acc) t.pair_samples []
  |> List.sort compare

let correct_activity_ts t (a : Activity.t) =
  Sim_time.add a.timestamp (Sim_time.span_scale (-1.0) (offset_of t a.context.host))

let corrected_breakdown ?normalize t cag =
  let hops = Latency.critical_path ?normalize cag in
  let order = ref [] in
  let table = Hashtbl.create 8 in
  let add (hop : Latency.hop) =
    let span =
      Sim_time.diff
        (correct_activity_ts t hop.child.Cag.activity)
        (correct_activity_ts t hop.parent.Cag.activity)
    in
    let key = Latency.component_label hop.comp in
    match Hashtbl.find_opt table key with
    | Some total -> Hashtbl.replace table key (Sim_time.span_add total span)
    | None ->
        order := hop.comp :: !order;
        Hashtbl.replace table key span
  in
  List.iter add hops;
  List.rev_map (fun comp -> (comp, Hashtbl.find table (Latency.component_label comp))) !order
