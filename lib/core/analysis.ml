type delta = {
  comp : Latency.component;
  baseline_pct : float;
  observed_pct : float;
  change_pp : float;
}

type subject =
  | Tier of string
  | Tier_network of string
  | Interaction of { src : string; dst : string }

let subject_label = function
  | Tier t -> "tier " ^ t
  | Tier_network t -> "network of tier " ^ t
  | Interaction { src; dst } -> Printf.sprintf "interaction %s->%s" src dst

let compare_subject a b =
  match (a, b) with
  | Tier a, Tier b -> String.compare a b
  | Tier _, _ -> -1
  | _, Tier _ -> 1
  | Tier_network a, Tier_network b -> String.compare a b
  | Tier_network _, _ -> -1
  | _, Tier_network _ -> 1
  | Interaction a, Interaction b -> (
      match String.compare a.src b.src with 0 -> String.compare a.dst b.dst | c -> c)

let equal_subject a b = compare_subject a b = 0

type suspect = { subject : subject; reason : string; severity : float }
type report = { deltas : delta list; suspects : suspect list }

let internal_threshold = 0.08
let interaction_threshold = 0.08
let collapse_threshold = -0.04

let union_components baseline observed =
  let keys = Hashtbl.create 16 in
  let order = ref [] in
  let note (c, _) =
    let key = Latency.component_label c in
    if not (Hashtbl.mem keys key) then begin
      Hashtbl.replace keys key ();
      order := c :: !order
    end
  in
  List.iter note baseline;
  List.iter note observed;
  List.rev !order

let lookup profile c =
  match List.find_opt (fun (c', _) -> Latency.equal_component c c') profile with
  | Some (_, v) -> v
  | None -> 0.0

let tiers_of deltas =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let note p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p ();
      order := p :: !order
    end
  in
  List.iter
    (fun d ->
      note d.comp.Latency.src;
      note d.comp.Latency.dst)
    deltas;
  List.rev !order

let pct x = x *. 100.0

let compare_profiles ~baseline ~observed =
  let deltas =
    union_components baseline observed
    |> List.map (fun c ->
           let b = lookup baseline c and o = lookup observed c in
           { comp = c; baseline_pct = b; observed_pct = o; change_pp = o -. b })
    |> List.sort (fun a b -> Float.compare (Float.abs b.change_pp) (Float.abs a.change_pp))
  in
  let internal_of tier =
    List.find_opt
      (fun d -> String.equal d.comp.Latency.src tier && String.equal d.comp.Latency.dst tier)
      deltas
  in
  let tier_suspects =
    List.filter_map
      (fun tier ->
        match internal_of tier with
        | Some d when d.change_pp >= internal_threshold ->
            Some
              {
                subject = Tier tier;
                reason =
                  Printf.sprintf "internal share %s rose %.0f%% -> %.0f%%"
                    (Latency.component_label d.comp)
                    (pct d.baseline_pct) (pct d.observed_pct);
                severity = d.change_pp;
              }
        | Some _ | None -> None)
      (tiers_of deltas)
  in
  let interaction_suspects =
    List.filter_map
      (fun d ->
        if
          (not (String.equal d.comp.Latency.src d.comp.Latency.dst))
          && d.change_pp >= interaction_threshold
        then
          Some
            {
              subject = Interaction { src = d.comp.Latency.src; dst = d.comp.Latency.dst };
              reason =
                Printf.sprintf
                  "share %s rose %.0f%% -> %.0f%%: admission at %s (queueing, thread pool) or \
                   the network between them"
                  (Latency.component_label d.comp)
                  (pct d.baseline_pct) (pct d.observed_pct) d.comp.Latency.dst;
              severity = d.change_pp;
            }
        else None)
      deltas
  in
  let network_suspects =
    List.filter_map
      (fun tier ->
        let touching =
          List.filter
            (fun d ->
              (not (String.equal d.comp.Latency.src d.comp.Latency.dst))
              && (String.equal d.comp.Latency.src tier || String.equal d.comp.Latency.dst tier))
            deltas
        in
        let rise = List.fold_left (fun acc d -> acc +. Float.max 0.0 d.change_pp) 0.0 touching in
        let grew = List.length (List.filter (fun d -> d.change_pp > 0.01) touching) in
        match internal_of tier with
        | Some d when rise >= 0.08 && grew >= 2 && d.change_pp <= collapse_threshold ->
            Some
              {
                subject = Tier_network tier;
                reason =
                  Printf.sprintf
                    "interactions around %s gained %.0f points across %d components while %s \
                     collapsed %.0f%% -> %.0f%%"
                    tier (pct rise) grew
                    (Latency.component_label d.comp)
                    (pct d.baseline_pct) (pct d.observed_pct);
                severity = rise;
              }
        | Some _ | None -> None)
      (tiers_of deltas)
  in
  let suspects =
    tier_suspects @ network_suspects @ interaction_suspects
    |> List.sort (fun a b -> Float.compare b.severity a.severity)
  in
  { deltas; suspects }

let diagnose ~baseline ~observed =
  compare_profiles
    ~baseline:(Aggregate.component_percentages baseline)
    ~observed:(Aggregate.component_percentages observed)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>component shares (baseline -> observed):";
  (* Shares clamp to [0,1] for display (see Report.clamp_share); change_pp
     stays faithful so a skew-driven shift is still visible as a delta. *)
  List.iter
    (fun d ->
      Format.fprintf ppf "@,  %-18s %5.1f%% -> %5.1f%%  (%+.1f)"
        (Latency.component_label d.comp)
        (pct (Report.clamp_share d.baseline_pct))
        (pct (Report.clamp_share d.observed_pct))
        (pct d.change_pp))
    r.deltas;
  (match r.suspects with
  | [] -> Format.fprintf ppf "@,no suspect: profiles are consistent"
  | suspects ->
      Format.fprintf ppf "@,suspects:";
      List.iter
        (fun s -> Format.fprintf ppf "@,  %-24s %s" (subject_label s.subject) s.reason)
        suspects);
  Format.fprintf ppf "@]"
