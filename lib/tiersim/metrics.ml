module Sim_time = Simnet.Sim_time
module R = Telemetry.Registry
module H = Telemetry.Histogram

type sample = { finished_at : Sim_time.t; rt : Sim_time.span; kind : string }

type t = {
  mutable rev_samples : sample list;
  mutable count : int;
  requests : R.counter;
  rt_hists : (string, H.t) Hashtbl.t;  (* registry handles, one per kind *)
}

type summary = {
  completed : int;
  throughput_rps : float;
  mean_rt_s : float;
  p50_rt_s : float;
  p90_rt_s : float;
  p99_rt_s : float;
  max_rt_s : float;
}

(* Summaries restrict to a time interval, so raw samples are kept and a
   fresh histogram is folded per call; the live registry histograms cover
   the whole run. 64 buckets per decade keeps the quantile error under
   ~4%. *)
let buckets_per_decade = 64

let create () =
  {
    rev_samples = [];
    count = 0;
    requests = R.counter R.default ~help:"Completed emulated-client requests" "pt_tiersim_requests_total";
    rt_hists = Hashtbl.create 8;
  }

let registry_hist t kind =
  match Hashtbl.find_opt t.rt_hists kind with
  | Some h -> h
  | None ->
      let h =
        R.histogram R.default ~help:"Client-observed response time, seconds"
          ~labels:[ ("kind", kind) ] ~buckets_per_decade "pt_tiersim_response_seconds"
      in
      Hashtbl.replace t.rt_hists kind h;
      h

let record t ~finished_at ~rt ~kind =
  t.rev_samples <- { finished_at; rt; kind } :: t.rev_samples;
  t.count <- t.count + 1;
  R.incr t.requests;
  H.observe (registry_hist t kind) (Sim_time.span_to_float_s rt)

let total_recorded t = t.count

let bounds ?from_ts ?until_ts t =
  let lo = Option.value ~default:Sim_time.zero from_ts in
  let hi =
    match until_ts with
    | Some ts -> ts
    | None ->
        List.fold_left
          (fun acc s -> Sim_time.max acc s.finished_at)
          Sim_time.zero t.rev_samples
  in
  (lo, hi)

let summary_of_histogram h ~interval =
  let completed = H.count h in
  {
    completed;
    throughput_rps = (if interval <= 0.0 then 0.0 else float_of_int completed /. interval);
    mean_rt_s = H.mean h;
    p50_rt_s = H.quantile h 0.50;
    p90_rt_s = H.quantile h 0.90;
    p99_rt_s = H.quantile h 0.99;
    max_rt_s = H.max_value h;
  }

let summarize_filtered ?from_ts ?until_ts t ~keep =
  let lo, hi = bounds ?from_ts ?until_ts t in
  let h = H.create ~buckets_per_decade () in
  List.iter
    (fun s ->
      if keep s && Sim_time.(s.finished_at >= lo) && Sim_time.(s.finished_at <= hi) then
        H.observe h (Sim_time.span_to_float_s s.rt))
    t.rev_samples;
  summary_of_histogram h ~interval:(Sim_time.span_to_float_s (Sim_time.diff hi lo))

let summarize ?from_ts ?until_ts t = summarize_filtered ?from_ts ?until_ts t ~keep:(fun _ -> true)

let summarize_kind ?from_ts ?until_ts t ~kind =
  summarize_filtered ?from_ts ?until_ts t ~keep:(fun s -> String.equal s.kind kind)

let kinds t =
  List.sort_uniq String.compare (List.map (fun s -> s.kind) t.rev_samples)

let pp_summary ppf s =
  Format.fprintf ppf "%d done, %.1f req/s, rt mean %.1f ms p50 %.1f p90 %.1f p99 %.1f"
    s.completed s.throughput_rps (s.mean_rt_s *. 1e3) (s.p50_rt_s *. 1e3) (s.p90_rt_s *. 1e3)
    (s.p99_rt_s *. 1e3)
