module Address = Simnet.Address
module Clock = Simnet.Clock
module Cpu = Simnet.Cpu
module Engine = Simnet.Engine
module Messaging = Simnet.Messaging
module Node = Simnet.Node
module Proc = Simnet.Proc
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time
module Tcp = Simnet.Tcp
module Activity = Trace.Activity
module Ground_truth = Trace.Ground_truth

type Messaging.payload +=
  | Http_request of Workload.plan
  | App_request of Workload.plan
  | Db_query of { plan_id : int; kind : string; query : Workload.db_query }

type config = {
  seed : int;
  replica : int;
      (* Replica index inside a simulated cluster: names the tier hosts
         web/app/db{replica+1} and scopes every IP's second octet, so
         replica 0 reproduces the historical single-service addresses. *)
  client_node_count : int;
  cores_per_node : int;
  max_clients : int;
  max_threads : int;
  db_max_threads : int;
  backend_pool_size : int;
  backend_idle_timeout : Sim_time.span;
  skew : Sim_time.span;
  drift_ppm : float;
  switch_penalty : float;
  faults : Faults.t list;
  fault_onset : Sim_time.span option;
      (* When set, injected faults activate only from this sim instant. *)
  probe_overhead : Sim_time.span;
}

let default_config =
  {
    seed = 42;
    replica = 0;
    client_node_count = 3;
    cores_per_node = 2;
    max_clients = 1200;
    max_threads = 40;
    db_max_threads = 512;
    backend_pool_size = 128;
    backend_idle_timeout = Sim_time.ms 250;
    skew = Sim_time.span_zero;
    drift_ppm = 0.0;
    switch_penalty = 0.002;
    faults = [];
    fault_onset = None;
    probe_overhead = Sim_time.us 20;
  }

type tier_stats = {
  busy_workers : int;
  queued_jobs : int;
  peak_queued_jobs : int;
  served : int;
  cpu_utilization : float;
}

type t = {
  engine : Engine.t;
  stack : Tcp.stack;
  messaging : Messaging.t;
  rng : Rng.t;
  config : config;
  client_nodes : Node.t array;
  web_node : Node.t;
  app_node : Node.t;
  db_node : Node.t;
  gt : Ground_truth.t;
  metrics : Metrics.t;
  probe : Trace.Probe.t;
  ejb_delay_mean : Sim_time.span option;
  items_lock : (Locking.t * Sim_time.span) option;
  fault_active : unit -> bool;
  backend_pool : Semaphore.t;
  mutable web_pool : Tcp.socket Worker_pool.t option;
  mutable app_pool : Tcp.socket Worker_pool.t option;
  mutable db_pool : Tcp.socket Worker_pool.t option;
  mutable next_request_id : int;
}

let engine t = t.engine
let stack t = t.stack
let messaging t = t.messaging
let rng t = t.rng
let config t = t.config
let client_nodes t = t.client_nodes
let web_node t = t.web_node
let app_node t = t.app_node
let db_node t = t.db_node
let ground_truth t = t.gt
let metrics t = t.metrics
let probe t = t.probe
let entry_endpoint t = Address.endpoint (Node.ip t.web_node) 80
let db_endpoint t = Address.endpoint (Node.ip t.db_node) 3306

let server_hostnames t =
  [ Node.hostname t.web_node; Node.hostname t.app_node; Node.hostname t.db_node ]

let fresh_request_id t =
  let id = t.next_request_id in
  t.next_request_id <- id + 1;
  id

(* The replica addressing scheme ({!Naming}), exposed standalone so a
   cluster-wide consumer (the hierarchical collection plane) can know
   every replica's entry endpoint and traced hosts before any replica is
   built. [create] uses the same formulas. *)
let replica_entry_endpoint ~replica =
  Address.endpoint (Address.ip_of_string (Naming.cluster_tier_ip ~replica ~tier_index:0)) 80

let replica_server_hostnames ~replica =
  List.map (fun tier -> Naming.replica_host ~tier ~index:replica) [ "web"; "app"; "db" ]

let standard_drop_programs = [ "rlogin"; "rlogind"; "ssh"; "sshd"; "mysql" ]

let replica_transform_config ~replica =
  Core.Transform.config
    ~entry_points:[ replica_entry_endpoint ~replica ]
    ~drop_programs:standard_drop_programs ()

let transform_config t =
  Core.Transform.config ~entry_points:[ entry_endpoint t ]
    ~drop_programs:standard_drop_programs ()

let context node (proc : Proc.t) =
  {
    Activity.host = Node.hostname node;
    program = proc.Proc.program;
    pid = proc.pid;
    tid = proc.tid;
  }

let pool_stats node pool =
  {
    busy_workers = Worker_pool.busy pool;
    queued_jobs = Worker_pool.queued pool;
    peak_queued_jobs = Worker_pool.peak_queued pool;
    served = Worker_pool.total_served pool;
    cpu_utilization = Cpu.utilization (Node.cpu node);
  }

let web_stats t = pool_stats t.web_node (Option.get t.web_pool)
let app_stats t = pool_stats t.app_node (Option.get t.app_pool)
let db_stats t = pool_stats t.db_node (Option.get t.db_pool)

let compute node work k = Cpu.submit (Node.cpu node) ~work k

(* ---- Database tier: thread per connection, optional items-table lock. *)

let serve_db_conn t proc sock ~release =
  let node = t.db_node in
  let ctx = context node proc in
  let respond ~size k =
    Messaging.send_message t.messaging sock ~proc ~size ~k ()
  in
  let rec next () =
    Messaging.recv_message t.messaging sock ~proc
      ~k:(fun (m : Messaging.msg) ->
        if m.size = 0 then begin
          Tcp.close t.stack sock;
          release ()
        end
        else
          match m.payload with
          | Some (Db_query { plan_id; kind; query }) ->
              Ground_truth.begin_visit t.gt ~id:plan_id ~kind ~context:ctx
                ~ts:(Node.local_time node);
              let finish () =
                Ground_truth.end_visit t.gt ~id:plan_id ~context:ctx
                  ~ts:(Node.local_time node);
                respond ~size:query.Workload.result_size next
              in
              let locked_run =
                match t.items_lock with
                | Some (lock, extra_hold) when query.Workload.locks_items && t.fault_active () ->
                    fun () ->
                      Locking.with_lock lock ~critical:(fun done_ ->
                          compute node query.Workload.db_cpu (fun () ->
                              ignore
                                (Engine.schedule_after t.engine ~delay:extra_hold (fun () ->
                                     done_ ();
                                     finish ()))))
                | Some _ | None ->
                    fun () -> compute node query.Workload.db_cpu finish
              in
              locked_run ()
          | Some _ | None ->
              (* Not a service query: a noise client (e.g. a mysql command
                 line) sharing the database. Serve it like a small ad-hoc
                 query so its activities look like real mysqld traffic. *)
              let result = max 256 (4 * m.size) in
              compute node (Sim_time.us 800) (fun () -> respond ~size:result next))
      ()
  in
  next ()

(* ---- App tier (JBoss): thread per connection from a MaxThreads pool. *)

let serve_app_conn t proc sock ~release =
  let node = t.app_node in
  let ctx = context node proc in
  let db_conn = ref None in
  let with_db k =
    match !db_conn with
    | Some d -> k d
    | None ->
        Tcp.connect t.stack ~node ~proc ~dst:(db_endpoint t) ~k:(fun d ->
            db_conn := Some d;
            k d)
  in
  let close_db () =
    match !db_conn with
    | Some d ->
        Tcp.close t.stack d;
        db_conn := None
    | None -> ()
  in
  let maybe_ejb_delay k =
    match t.ejb_delay_mean with
    | Some mean when t.fault_active () ->
        let delay = Rng.exponential_span t.rng ~mean in
        ignore (Engine.schedule_after t.engine ~delay k)
    | Some _ | None -> k ()
  in
  let rec next () =
    Messaging.recv_message t.messaging sock ~proc
      ~k:(fun (m : Messaging.msg) ->
        if m.size = 0 then begin
          close_db ();
          Tcp.close t.stack sock;
          release ()
        end
        else
          match m.payload with
          | Some (App_request plan) -> handle plan
          | Some _ | None -> failwith "app tier: unexpected payload")
      ()
  and handle (plan : Workload.plan) =
    Ground_truth.begin_visit t.gt ~id:plan.id ~kind:plan.kind ~context:ctx
      ~ts:(Node.local_time node);
    maybe_ejb_delay (fun () ->
        compute node plan.app_cpu_pre (fun () ->
            let rec run_queries = function
              | [] ->
                  compute node plan.app_cpu_post (fun () ->
                      Ground_truth.end_visit t.gt ~id:plan.id ~context:ctx
                        ~ts:(Node.local_time node);
                      Messaging.send_message t.messaging sock ~proc
                        ~size:plan.app_response_size ~k:next ())
              | query :: rest ->
                  with_db (fun d ->
                      Messaging.send_message t.messaging d ~proc ~size:query.Workload.query_size
                        ~payload:(Db_query { plan_id = plan.id; kind = plan.kind; query })
                        ~k:(fun () ->
                          Messaging.recv_message t.messaging d ~proc
                            ~k:(fun (_ : Messaging.msg) ->
                              compute node plan.app_cpu_per_query (fun () ->
                                  run_queries rest))
                            ())
                        ())
            in
            run_queries plan.queries))
  in
  next ()

(* ---- Web tier (httpd prefork): process per client connection, keeping a
   backend connection to the app tier that closes after an idle timeout. *)

let serve_web_conn t proc sock ~release =
  let node = t.web_node in
  let ctx = context node proc in
  let backend = ref None in
  let idle_timer = ref None in
  let cancel_idle () =
    match !idle_timer with
    | Some timer ->
        Engine.cancel t.engine timer;
        idle_timer := None
    | None -> ()
  in
  let close_backend () =
    match !backend with
    | Some b ->
        Tcp.close t.stack b;
        backend := None;
        Semaphore.release t.backend_pool
    | None -> ()
  in
  let arm_idle () =
    cancel_idle ();
    idle_timer :=
      Some
        (Engine.schedule_after t.engine ~delay:t.config.backend_idle_timeout (fun () ->
             idle_timer := None;
             close_backend ()))
  in
  let with_backend k =
    match !backend with
    | Some b -> k b
    | None ->
        (* Backend connections come from a bounded, shared pool; waiting
           for a slot happens inside the web tier. *)
        Semaphore.acquire t.backend_pool (fun () ->
            Tcp.connect t.stack ~node ~proc
              ~dst:(Address.endpoint (Node.ip t.app_node) 8009)
              ~k:(fun b ->
                backend := Some b;
                k b))
  in
  let rec next () =
    Messaging.recv_message t.messaging sock ~proc
      ~k:(fun (m : Messaging.msg) ->
        if m.size = 0 then begin
          cancel_idle ();
          close_backend ();
          Tcp.close t.stack sock;
          release ()
        end
        else
          match m.payload with
          | Some (Http_request plan) -> handle plan
          | Some _ | None -> failwith "web tier: unexpected payload")
      ()
  and handle (plan : Workload.plan) =
    Ground_truth.begin_visit t.gt ~id:plan.id ~kind:plan.kind ~context:ctx
      ~ts:(Node.local_time node);
    cancel_idle ();
    compute node plan.httpd_parse_cpu (fun () ->
        with_backend (fun b ->
            Messaging.send_message t.messaging b ~proc ~size:plan.app_request_size
              ~payload:(App_request plan)
              ~k:(fun () ->
                Messaging.recv_message t.messaging b ~proc
                  ~k:(fun (_ : Messaging.msg) ->
                    compute node plan.httpd_respond_cpu (fun () ->
                        Ground_truth.end_visit t.gt ~id:plan.id ~context:ctx
                          ~ts:(Node.local_time node);
                        Messaging.send_message t.messaging sock ~proc
                          ~size:plan.response_size
                          ~k:(fun () ->
                            arm_idle ();
                            next ())
                          ()))
                  ())
              ()))
  in
  next ()

(* ---- Wiring. *)

let make_node engine ~hostname ~ip ~cores ~skew ~drift_ppm ~switch_penalty =
  Node.create ~engine ~hostname ~ip:(Address.ip_of_string ip) ~cores
    ~clock:(Clock.create ~skew ~drift_ppm ())
    ~switch_penalty ()

let create cfg =
  let engine = Engine.create () in
  let stack = Tcp.create_stack ~engine in
  let messaging = Messaging.create stack in
  let rng = Rng.create ~seed:cfg.seed in
  let half s = Sim_time.span_scale 0.5 s in
  if cfg.replica < 0 || cfg.replica > 255 then invalid_arg "Service.create: replica";
  let r = cfg.replica in
  let tier_host base = Naming.replica_host ~tier:base ~index:r in
  let client_nodes =
    Array.init cfg.client_node_count (fun i ->
        make_node engine
          ~hostname:(Printf.sprintf "client%d" (i + 1))
          ~ip:(Naming.cluster_client_ip ~replica:r ~index:i)
          ~cores:cfg.cores_per_node
          ~skew:(if i mod 2 = 0 then half cfg.skew else Sim_time.span_scale (-0.5) cfg.skew)
          ~drift_ppm:0.0 ~switch_penalty:0.0)
  in
  let web_node =
    make_node engine ~hostname:(tier_host "web")
      ~ip:(Naming.cluster_tier_ip ~replica:r ~tier_index:0)
      ~cores:cfg.cores_per_node ~skew:Sim_time.span_zero ~drift_ppm:cfg.drift_ppm
      ~switch_penalty:cfg.switch_penalty
  in
  let app_node =
    make_node engine ~hostname:(tier_host "app")
      ~ip:(Naming.cluster_tier_ip ~replica:r ~tier_index:1)
      ~cores:cfg.cores_per_node ~skew:cfg.skew ~drift_ppm:(-.cfg.drift_ppm)
      ~switch_penalty:cfg.switch_penalty
  in
  let db_node =
    make_node engine ~hostname:(tier_host "db")
      ~ip:(Naming.cluster_tier_ip ~replica:r ~tier_index:2)
      ~cores:cfg.cores_per_node
      ~skew:(Sim_time.span_scale (-1.0) cfg.skew)
      ~drift_ppm:cfg.drift_ppm ~switch_penalty:cfg.switch_penalty
  in
  let ejb_delay_mean =
    List.find_map
      (function Faults.Ejb_delay { mean } -> Some mean | _ -> None)
      cfg.faults
  in
  let items_lock =
    List.find_map
      (function
        | Faults.Database_lock { extra_hold } -> Some (Locking.create ~engine, extra_hold)
        | _ -> None)
      cfg.faults
  in
  List.iter
    (function
      | Faults.Ejb_network { bandwidth_mbps } ->
          let apply () = Node.set_nic_bandwidth_bps app_node (bandwidth_mbps *. 1e6) in
          (match cfg.fault_onset with
          | None -> apply ()
          | Some delay -> ignore (Engine.schedule_after engine ~delay apply))
      (* Host_silence is a probe fault, not a service fault: the service
         runs unchanged and Scenario.run truncates the host's log. *)
      | Faults.Ejb_delay _ | Faults.Database_lock _ | Faults.Host_silence _
      | Faults.Agent_crash _
      (* Scenario-level faults are interpreted by mesh topologies, not by
         the fixed RUBiS pipeline. *)
      | Faults.Tier_slow _ | Faults.Replica_slow _ | Faults.Key_skew _ -> ())
    cfg.faults;
  let probe =
    Trace.Probe.attach ~stack ~overhead:cfg.probe_overhead
      ~only:[ Node.hostname web_node; Node.hostname app_node; Node.hostname db_node ]
      ()
  in
  let t =
    {
      engine;
      stack;
      messaging;
      rng;
      config = cfg;
      client_nodes;
      web_node;
      app_node;
      db_node;
      gt = Ground_truth.create ();
      metrics = Metrics.create ();
      probe;
      ejb_delay_mean;
      items_lock;
      fault_active =
        (match cfg.fault_onset with
        | None -> fun () -> true
        | Some delay ->
            let at = Sim_time.add Sim_time.zero delay in
            fun () -> Sim_time.(Engine.now engine >= at));
      backend_pool = Semaphore.create ~engine ~capacity:cfg.backend_pool_size;
      web_pool = None;
      app_pool = None;
      db_pool = None;
      next_request_id = 0;
    }
  in
  let web_pool =
    Worker_pool.create ~node:web_node ~program:"httpd" ~capacity:cfg.max_clients
      ~identity:Worker_pool.Processes
      ~serve:(fun proc sock ~release -> serve_web_conn t proc sock ~release)
  in
  let app_pool =
    Worker_pool.create ~node:app_node ~program:"java" ~capacity:cfg.max_threads
      ~identity:Worker_pool.Threads
      ~serve:(fun proc sock ~release -> serve_app_conn t proc sock ~release)
  in
  let db_pool =
    Worker_pool.create ~node:db_node ~program:"mysqld" ~capacity:cfg.db_max_threads
      ~identity:Worker_pool.Threads
      ~serve:(fun proc sock ~release -> serve_db_conn t proc sock ~release)
  in
  t.web_pool <- Some web_pool;
  t.app_pool <- Some app_pool;
  t.db_pool <- Some db_pool;
  Tcp.listen stack web_node ~port:80 ~accept:(Worker_pool.dispatch web_pool);
  Tcp.listen stack app_node ~port:8009 ~accept:(Worker_pool.dispatch app_pool);
  Tcp.listen stack db_node ~port:3306 ~accept:(Worker_pool.dispatch db_pool);
  t
