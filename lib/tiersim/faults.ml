module Sim_time = Simnet.Sim_time

type t =
  | Ejb_delay of { mean : Sim_time.span }
  | Database_lock of { extra_hold : Sim_time.span }
  | Ejb_network of { bandwidth_mbps : float }
  | Host_silence of { host : string; after : Sim_time.span }
  | Agent_crash of {
      host : string;
      after : Sim_time.span;
      restart_after : Sim_time.span option;
    }
  | Tier_slow of { tier : string; factor : float }
  | Replica_slow of { tier : string; replica : int; factor : float }
  | Key_skew of { tier : string; hot_key : int; share : float }

let name = function
  | Ejb_delay _ -> "EJB_Delay"
  | Database_lock _ -> "Database_Lock"
  | Ejb_network _ -> "EJB_Network"
  | Host_silence _ -> "Host_Silence"
  | Agent_crash _ -> "Agent_Crash"
  | Tier_slow _ -> "Tier_Slow"
  | Replica_slow _ -> "Replica_Slow"
  | Key_skew _ -> "Key_Skew"

let ejb_delay = Ejb_delay { mean = Sim_time.ms 30 }
let database_lock = Database_lock { extra_hold = Sim_time.ms 8 }
let ejb_network = Ejb_network { bandwidth_mbps = 10.0 }
let host_silence ~host ~after = Host_silence { host; after }
let agent_crash ~host ~after ~restart_after = Agent_crash { host; after; restart_after }
let tier_slow ~tier ~factor = Tier_slow { tier; factor }
let replica_slow ~tier ~replica ~factor = Replica_slow { tier; replica; factor }
let key_skew ~tier ~hot_key ~share = Key_skew { tier; hot_key; share }
