(** The simulated three-tier auction service (the paper's RUBiS testbed).

    Topology, mirroring the paper's Fig. 7: client nodes run emulators;
    one node runs the [httpd] web tier (prefork: process per connection);
    one runs the [java] app tier (thread per connection, bounded by
    [max_threads] — JBoss's MaxThreads knob); one runs the [mysqld]
    database tier (thread per connection). The web tier keeps its backend
    connection to the app tier alive across a client's consecutive
    requests and closes it after [backend_idle_timeout] — so each live
    client occupies an app-tier thread for its request's duration plus up
    to the timeout, which is what makes MaxThreads=40 choke between 500
    and 800 concurrent clients exactly as in §5.4.1.

    The service records every request in a {!Trace.Ground_truth} oracle
    (standing in for the paper's modified, ID-tagging RUBiS) and response
    times in {!Metrics}. *)

type Simnet.Messaging.payload +=
  | Http_request of Workload.plan  (** Client -> web tier. *)
  | App_request of Workload.plan  (** Web tier -> app tier. *)
  | Db_query of { plan_id : int; kind : string; query : Workload.db_query }
      (** App tier -> database. *)

type config = {
  seed : int;
  replica : int;
      (** Replica index inside a simulated cluster (default 0): tier
          hosts are named web/app/db[replica+1] and every IP's second
          octet is the replica, so replica 0 reproduces the historical
          single-service addresses and replicas never share endpoints. *)
  client_node_count : int;  (** Paper: 3 client emulator nodes. *)
  cores_per_node : int;  (** Paper: 2-way SMP. *)
  max_clients : int;  (** Web-tier process pool size. *)
  max_threads : int;  (** App-tier thread pool size (default 40). *)
  db_max_threads : int;
  backend_pool_size : int;
      (** Web tier's bounded pool of backend connections (mod_jk style);
          overflow waits land inside the web tier. *)
  backend_idle_timeout : Simnet.Sim_time.span;
  skew : Simnet.Sim_time.span;
      (** Cross-node clock skew magnitude: the app node runs [+skew], the
          database node [-skew], other nodes in between. *)
  drift_ppm : float;  (** Clock drift, alternating sign across nodes. *)
  switch_penalty : float;  (** CPU context-switch penalty (see {!Simnet.Cpu}). *)
  faults : Faults.t list;
  fault_onset : Simnet.Sim_time.span option;
      (** Delay fault activation to this sim instant ([None]: active from
          the start). Lets online monitoring watch a regression appear. *)
  probe_overhead : Simnet.Sim_time.span;
}

val default_config : config
(** 1000-capable deployment with the paper's defaults: MaxThreads 40,
    250 ms backend idle timeout, 2 cores, no skew, no faults. *)

type t

val create : config -> t
(** Build nodes, listeners and pools; apply node-level faults. The probe
    is attached (covering only the three server nodes) but disabled. *)

(** {1 Accessors} *)

val engine : t -> Simnet.Engine.t
val stack : t -> Simnet.Tcp.stack
val messaging : t -> Simnet.Messaging.t
val rng : t -> Simnet.Rng.t
val config : t -> config
val client_nodes : t -> Simnet.Node.t array
val web_node : t -> Simnet.Node.t
val app_node : t -> Simnet.Node.t
val db_node : t -> Simnet.Node.t
val ground_truth : t -> Trace.Ground_truth.t
val metrics : t -> Metrics.t
val probe : t -> Trace.Probe.t

val entry_endpoint : t -> Simnet.Address.endpoint
(** The web tier's [ip:80]. *)

val db_endpoint : t -> Simnet.Address.endpoint
(** The database tier's [ip:3306] (the unfilterable-noise target). *)

val server_hostnames : t -> string list

val fresh_request_id : t -> int

val transform_config : t -> Core.Transform.config
(** Correlator preprocessing for this deployment: the entry endpoint plus
    the standard noise program filters (rlogin, sshd, mysql client). *)

(** {1 The replica addressing scheme, standalone}

    Derivable from [config.replica] alone, before any replica is built —
    what a cluster-wide consumer (the hierarchical collection plane, which
    must create its shard correlators up front) uses to partition entry
    flows and name traced hosts. [create] follows the same formulas. *)

val replica_entry_endpoint : replica:int -> Simnet.Address.endpoint
(** [10.<replica>.1.1:80] — replica [i]'s web-tier entry endpoint. *)

val replica_server_hostnames : replica:int -> string list
(** [[web<i+1>; app<i+1>; db<i+1>]]. *)

val standard_drop_programs : string list
(** The name-filterable noise programs every deployment drops. *)

val replica_transform_config : replica:int -> Core.Transform.config
(** [transform_config] of replica [i]'s deployment, computed standalone. *)

(** {1 Load-dependent state, for assertions and reports} *)

type tier_stats = {
  busy_workers : int;
  queued_jobs : int;
  peak_queued_jobs : int;
  served : int;
  cpu_utilization : float;
}

val web_stats : t -> tier_stats
val app_stats : t -> tier_stats
val db_stats : t -> tier_stats
