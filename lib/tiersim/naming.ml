(* One hostname/address allocation scheme shared by every simulated
   deployment, so replica-suffix and subnet logic is never duplicated
   between the RUBiS cluster preset and mesh topologies. *)

let replica_host ~tier ~index = Printf.sprintf "%s%d" tier (index + 1)

let cluster_tier_ip ~replica ~tier_index =
  Printf.sprintf "10.%d.%d.1" replica (tier_index + 1)

let cluster_client_ip ~replica ~index = Printf.sprintf "10.%d.0.%d" replica (10 + index)

(* Mesh topologies live in first octets 120+, disjoint from the cluster
   preset (octet = replica number, small) and the random call-tree
   topologies (10.9.x). *)
let mesh_zone = 120
let mesh_tier_ip ~tier_index ~replica = Printf.sprintf "10.%d.%d.1" (mesh_zone + tier_index) (replica + 1)
let mesh_clients_ip = "10.119.0.1"
