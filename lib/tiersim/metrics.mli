(** Quality-of-service metrics: throughput and response time.

    The client emulator feeds one sample per completed request; summaries
    restrict to a measurement interval so ramp-up/ramp-down requests can be
    excluded, as RUBiS's own reporting does.

    Summary statistics are computed over the shared {!Telemetry.Histogram}
    type (64 buckets per decade): [completed], [mean_rt_s] and [max_rt_s]
    are exact; the percentile fields are bucket-resolution approximations
    (within ~4%). Each recorded sample also feeds the process-wide
    telemetry registry ([pt_tiersim_requests_total],
    [pt_tiersim_response_seconds{kind=...}]). *)

type t

type summary = {
  completed : int;
  throughput_rps : float;  (** Completions per second over the interval. *)
  mean_rt_s : float;
  p50_rt_s : float;
  p90_rt_s : float;
  p99_rt_s : float;
  max_rt_s : float;
}

val create : unit -> t

val record :
  t -> finished_at:Simnet.Sim_time.t -> rt:Simnet.Sim_time.span -> kind:string -> unit

val total_recorded : t -> int

val summarize :
  ?from_ts:Simnet.Sim_time.t -> ?until_ts:Simnet.Sim_time.t -> t -> summary
(** Over samples whose completion falls in [[from_ts], [until_ts]].
    Defaults cover everything recorded. *)

val summarize_kind :
  ?from_ts:Simnet.Sim_time.t -> ?until_ts:Simnet.Sim_time.t -> t -> kind:string -> summary

val kinds : t -> string list
(** Distinct request kinds seen, sorted. *)

val pp_summary : Format.formatter -> summary -> unit
