(** Canned experiment scenarios: one call from workload spec to collected
    traces, oracle and QoS metrics.

    A scenario reproduces the paper's experimental procedure (§5.1): a
    three-stage run — up-ramp (2 min), runtime session (7 min 30 s),
    down-ramp (1 min) — with a given client count, workload mix,
    MaxThreads setting, faults, clock skew and optional noise. QoS is
    summarised over the runtime session only. [time_scale] shrinks the
    stage durations (not think or service times) so the full experiment
    grid fits in CI; 1.0 reproduces the paper's timing. *)

type noise_spec =
  | No_noise
  | Paper_noise of { db_connections : int }
      (** The §5.3.3 environment: rlogin and ssh chatter (name-filterable)
          plus [db_connections] mysql command-line clients hammering the
          service's own database (unfilterable by name). *)

type spec = {
  name : string;
  clients : int;
  mix : Workload.mix;
  only_kind : string option;
  max_threads : int;
  tracing : bool;  (** Probe enabled? (Figs. 12-13 compare both.) *)
  faults : Faults.t list;
  noise : noise_spec;
  skew : Simnet.Sim_time.span;
  drift_ppm : float;
  time_scale : float;
  seed : int;
  replica : int;
      (** Cluster replica index (default 0) — see
          [Service.config.replica]. *)
  fault_onset : Simnet.Sim_time.span option;
      (** Activate [faults] only from this sim instant (default: start). *)
}

val default : spec
(** Browse_only, 300 clients, MaxThreads 40, tracing on, no faults/noise/
    skew, time_scale 0.1, seed 42. *)

type outcome = {
  spec : spec;
  logs : Trace.Log.collection;  (** Per-server-node activity logs. *)
  ground_truth : Trace.Ground_truth.t;
  metrics : Metrics.t;
  measure_from : Simnet.Sim_time.t;  (** Runtime-session bounds. *)
  measure_until : Simnet.Sim_time.t;
  summary : Metrics.summary;  (** Over the runtime session. *)
  activity_count : int;
  transform : Core.Transform.config;
  web : Service.tier_stats;
  app : Service.tier_stats;
  db : Service.tier_stats;
  sim_events : int;
}

val run : ?before_run:(Service.t -> unit) -> ?after_run:(Service.t -> unit) -> spec -> outcome
(** Build the deployment, run the three stages plus drain, and collect
    everything. Deterministic for a fixed spec. [before_run] fires after
    the probe is enabled but before any load is scheduled — the hook an
    in-band collection plane ({!Collect.Deploy.install}) uses to join the
    deployment; [after_run] fires as soon as the event queue drains,
    before outcome assembly. *)

val stage_spans :
  time_scale:float -> Simnet.Sim_time.span * Simnet.Sim_time.span * Simnet.Sim_time.span
(** (up-ramp, runtime, down-ramp) after scaling the paper's durations. *)

val mid_run_onset : ?frac:float -> time_scale:float -> unit -> Simnet.Sim_time.span
(** The canonical [fault_onset] for a mid-run injection: the up-ramp plus
    [frac] (default 0.5) of the runtime session — late enough that a
    diagnosis baseline can be learned on healthy traffic, early enough
    that the abnormal regime dominates the rest of the session. *)

val runtime_session : time_scale:float -> Simnet.Sim_time.t * Simnet.Sim_time.t
(** The (start, end) instants of the runtime session: QoS and diagnosis
    verdicts are measured inside this interval only (ramps excluded). *)

(** {1 Cluster preset}

    A simulated cluster is [replicas] independent three-tier deployments
    with disjoint hosts and addresses, run sequentially (deterministic).
    Requests never cross replicas, so each replica's entry-connection set
    partitions the cluster's entry flows — the property the hierarchical
    correlation tree shards on. *)

type cluster = { base : spec; replicas : int }

val default_cluster : cluster
(** 17 replicas x 3 traced hosts = 51 hosts (the ROADMAP's 50+ target),
    with a lighter per-replica load so the closed loop fits in CI. *)

type cluster_outcome = {
  cluster : cluster;
  outcomes : outcome list;  (** Per replica, in replica order. *)
  all_logs : Trace.Log.collection;  (** Every replica's server logs. *)
  cluster_transform : Core.Transform.config;
      (** The cluster transform: union of the replicas' entry points. *)
  hosts : string list;  (** Every traced server hostname. *)
}

val replica_spec : cluster -> int -> spec
(** The effective spec of replica [i] ([replica = i], seed offset by
    [i], name suffixed ["/r<i>"]). *)

val run_cluster :
  ?before_replica:(int -> Service.t -> unit) ->
  ?after_replica:(int -> Service.t -> unit) ->
  cluster ->
  cluster_outcome
(** Run every replica, in order. The hooks receive the replica index and
    fire exactly like [run]'s [before_run]/[after_run] — the former is
    where a hierarchical collection plane installs its per-replica agents
    and collectors. *)
