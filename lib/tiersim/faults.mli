(** Injected performance problems (§5.4.2 of the paper).

    Three faults, mirroring the paper's abnormal cases:

    - [EJB_delay]: a random delay injected into the second tier's request
      handling (the paper modified RUBiS EJB code);
    - [Database_lock]: the RUBiS [items] table is locked, serialising and
      stretching every query that touches it;
    - [EJB_network]: the app-server node's NIC drops from 100 Mbps to
      10 Mbps (the paper reconfigured the Ethernet driver). *)

type t =
  | Ejb_delay of { mean : Simnet.Sim_time.span }
      (** Extra non-CPU delay per request in the app tier (exponential). *)
  | Database_lock of { extra_hold : Simnet.Sim_time.span }
      (** Queries on the items table serialise behind one lock, held for
          the query's CPU time plus [extra_hold]. *)
  | Ejb_network of { bandwidth_mbps : float }
  | Host_silence of { host : string; after : Simnet.Sim_time.span }
      (** The host's probe goes dark [after] into the run (crash or
          partition): the service keeps running but the host logs nothing
          further — the straggler scenario the fault-tolerant online
          pipeline must survive. Applied as log truncation by
          {!Scenario.run}. *)
  | Agent_crash of {
      host : string;
      after : Simnet.Sim_time.span;
      restart_after : Simnet.Sim_time.span option;
    }
      (** The collection agent on [host] dies [after] into the run and,
          if [restart_after] is set, comes back that much later,
          reconnecting and resending from the last acknowledged frame.
          The probe and service are untouched — only shipping is
          affected, so offline logs stay complete while the in-band
          collection plane ({!Collect.Deploy}) loses whatever the agent's
          backpressure semantics say it must. Ignored by deployments
          without a collection plane. *)
  | Tier_slow of { tier : string; factor : float }
      (** Every replica of [tier] multiplies its per-request compute by
          [factor] — the seed of a cascading failure when upstream edges
          carry retry policies. Scenario-level: interpreted by mesh
          topologies ([lib/mesh]); the fixed RUBiS service ignores it. *)
  | Replica_slow of { tier : string; replica : int; factor : float }
      (** One replica of [tier] (a canary running a slow version) does
          its compute [factor] times slower; the other replicas are
          healthy. Scenario-level, mesh-interpreted. *)
  | Key_skew of { tier : string; hot_key : int; share : float }
      (** The client key distribution collapses: a [share] fraction of
          requests use [hot_key], hammering the partition of [tier] that
          owns it. Scenario-level, mesh-interpreted. *)

val name : t -> string
(** The paper's labels: ["EJB_Delay"], ["Database_Lock"], ["EJB_Network"]
    — plus ["Host_Silence"] for the probe-crash fault and ["Tier_Slow"],
    ["Replica_Slow"], ["Key_Skew"] for the mesh scenario presets. *)

val ejb_delay : t
(** 30 ms mean extra delay. *)

val database_lock : t
(** 8 ms extra hold per items-table query. *)

val ejb_network : t
(** 10 Mbps. *)

val host_silence : host:string -> after:Simnet.Sim_time.span -> t

val agent_crash :
  host:string ->
  after:Simnet.Sim_time.span ->
  restart_after:Simnet.Sim_time.span option ->
  t

val tier_slow : tier:string -> factor:float -> t
val replica_slow : tier:string -> replica:int -> factor:float -> t
val key_skew : tier:string -> hot_key:int -> share:float -> t
