(** Shared hostname/address allocation.

    Every simulated deployment — the RUBiS three-tier service, its
    cluster preset, and declarative mesh topologies ({!module:Mesh} in
    [lib/mesh]) — names hosts and assigns subnets through this module, so
    a hostname like [app3] or an entry endpoint always means the same
    thing across presets and no replica-suffix logic is duplicated. *)

val replica_host : tier:string -> index:int -> string
(** [replica_host ~tier:"app" ~index:2] is ["app3"]: 1-based replica
    suffix on the tier name. *)

val cluster_tier_ip : replica:int -> tier_index:int -> string
(** RUBiS cluster addressing: ["10.<replica>.<tier_index+1>.1"]. Tier
    index 0 is the entry (web) tier, so
    [cluster_tier_ip ~replica ~tier_index:0] is the replica's entry
    address. *)

val cluster_client_ip : replica:int -> index:int -> string
(** Client emulator nodes of a cluster replica: ["10.<replica>.0.<10+index>"]. *)

val mesh_zone : int
(** First-octet base for mesh topologies (disjoint from cluster replicas
    and the 10.9.* random call-tree topologies). *)

val mesh_tier_ip : tier_index:int -> replica:int -> string
(** ["10.<mesh_zone+tier_index>.<replica+1>.1"]. *)

val mesh_clients_ip : string
(** The mesh load-generator node's address. *)
