module Engine = Simnet.Engine
module Node = Simnet.Node
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time

type noise_spec = No_noise | Paper_noise of { db_connections : int }

type spec = {
  name : string;
  clients : int;
  mix : Workload.mix;
  only_kind : string option;
  max_threads : int;
  tracing : bool;
  faults : Faults.t list;
  noise : noise_spec;
  skew : Sim_time.span;
  drift_ppm : float;
  time_scale : float;
  seed : int;
  replica : int;
  fault_onset : Sim_time.span option;
}

let default =
  {
    name = "default";
    clients = 300;
    mix = Workload.Browse_only;
    only_kind = None;
    max_threads = 40;
    tracing = true;
    faults = [];
    noise = No_noise;
    skew = Sim_time.span_zero;
    drift_ppm = 0.0;
    time_scale = 0.1;
    seed = 42;
    replica = 0;
    fault_onset = None;
  }

type outcome = {
  spec : spec;
  logs : Trace.Log.collection;
  ground_truth : Trace.Ground_truth.t;
  metrics : Metrics.t;
  measure_from : Sim_time.t;
  measure_until : Sim_time.t;
  summary : Metrics.summary;
  activity_count : int;
  transform : Core.Transform.config;
  web : Service.tier_stats;
  app : Service.tier_stats;
  db : Service.tier_stats;
  sim_events : int;
}

(* The paper's stage durations: up-ramp 2 min 9 ms, runtime 7 min 30 s 9 ms,
   down-ramp 1 min 10 ms. *)
let stage_spans ~time_scale =
  let scale s = Sim_time.span_scale time_scale s in
  ( scale (Sim_time.ms 120_009),
    scale (Sim_time.ms 450_009),
    scale (Sim_time.ms 60_010) )

let mid_run_onset ?(frac = 0.5) ~time_scale () =
  let up, runtime, _ = stage_spans ~time_scale in
  Sim_time.span_add up (Sim_time.span_scale frac runtime)

let runtime_session ~time_scale =
  let up, runtime, _ = stage_spans ~time_scale in
  let from = Sim_time.add Sim_time.zero up in
  (from, Sim_time.add from runtime)

let install_noise svc spec ~until =
  match spec.noise with
  | No_noise -> ()
  | Paper_noise { db_connections } ->
      let stack = Service.stack svc in
      let messaging = Service.messaging svc in
      let rng = Rng.split (Service.rng svc) "noise" in
      let clients = Service.client_nodes svc in
      let client0 = clients.(0) in
      (* rlogin and sshd chatter between a client node and two server
         nodes: name-filterable noise crossing the traced hosts. *)
      Trace.Noise.run ~stack ~messaging ~rng ~client_node:client0
        ~server_node:(Service.web_node svc) ~until
        (Trace.Noise.chatter_spec ~client_program:"rlogin" ~server_program:"rlogind"
           ~port:513);
      Trace.Noise.run ~stack ~messaging ~rng ~client_node:client0
        ~server_node:(Service.app_node svc) ~until
        (Trace.Noise.chatter_spec ~client_program:"ssh" ~server_program:"sshd" ~port:22);
      (* mysql command-line clients sharing the service's database: their
         server-side activities run under mysqld and are not
         name-filterable. *)
      let noise_client = clients.(min 1 (Array.length clients - 1)) in
      Trace.Noise.run ~stack ~messaging ~rng ~client_node:noise_client
        ~server_node:(Service.db_node svc) ~until
        (Trace.Noise.mysql_client_spec ~connections:db_connections
           ~mean_interval:(Sim_time.ms 12) ~port:3306)

let run ?before_run ?after_run spec =
  let up, runtime, down = stage_spans ~time_scale:spec.time_scale in
  let cfg =
    {
      Service.default_config with
      Service.seed = spec.seed;
      replica = spec.replica;
      max_threads = spec.max_threads;
      skew = spec.skew;
      drift_ppm = spec.drift_ppm;
      faults = spec.faults;
      fault_onset = spec.fault_onset;
    }
  in
  let svc = Service.create cfg in
  let engine = Service.engine svc in
  if spec.tracing then Trace.Probe.enable (Service.probe svc);
  (match before_run with Some f -> f svc | None -> ());
  let t_up = Sim_time.add Sim_time.zero up in
  let t_run_end = Sim_time.add t_up runtime in
  let t_down_end = Sim_time.add t_run_end down in
  Client.start svc
    {
      Client.count = spec.clients;
      mix = spec.mix;
      ramp_up = up;
      stop_issuing_at = t_down_end;
      only_kind = spec.only_kind;
    };
  install_noise svc spec ~until:t_down_end;
  (* Run the three stages, then let in-flight work drain completely. *)
  Engine.run engine;
  (match after_run with Some f -> f svc | None -> ());
  let probe = Service.probe svc in
  (* Probe faults apply after the run: a silenced host's log is truncated
     at the fault instant, exactly what a crashed tracer leaves behind. *)
  let logs =
    List.fold_left
      (fun logs -> function
        | Faults.Host_silence { host; after } ->
            Trace.Loss.silence ~host ~after:(Sim_time.add Sim_time.zero after) logs
        | Faults.Ejb_delay _ | Faults.Database_lock _ | Faults.Ejb_network _
        | Faults.Agent_crash _ | Faults.Tier_slow _ | Faults.Replica_slow _
        | Faults.Key_skew _ -> logs)
      (Trace.Probe.logs probe) spec.faults
  in
  {
    spec;
    logs;
    ground_truth = Service.ground_truth svc;
    metrics = Service.metrics svc;
    measure_from = t_up;
    measure_until = t_run_end;
    summary =
      Metrics.summarize ~from_ts:t_up ~until_ts:t_run_end (Service.metrics svc);
    activity_count = Trace.Probe.activity_count probe;
    transform = Service.transform_config svc;
    web = Service.web_stats svc;
    app = Service.app_stats svc;
    db = Service.db_stats svc;
    sim_events = Engine.events_fired engine;
  }

(* ---- Cluster preset: R independent service replicas. ----

   Each replica is a full three-tier deployment in its own engine with
   disjoint hosts and addresses (see [Service.config.replica]); replicas
   run sequentially, so a cluster run is deterministic exactly like a
   single run. Requests never cross replicas — each replica's entry
   connection set is a natural partition of the cluster's entry flows,
   which is what the hierarchical correlation tree shards on. *)

type cluster = { base : spec; replicas : int }

(* 17 replicas x 3 traced server hosts = 51 hosts, the ROADMAP's 50+ host
   target, sized so the closed loop still runs in CI time. *)
let default_cluster =
  { base = { default with clients = 60; time_scale = 0.02 }; replicas = 17 }

type cluster_outcome = {
  cluster : cluster;
  outcomes : outcome list;  (* replica order *)
  all_logs : Trace.Log.collection;  (* every replica's server logs *)
  cluster_transform : Core.Transform.config;  (* union of the replicas' entry points *)
  hosts : string list;  (* every traced server hostname, replica order *)
}

let replica_spec cluster i =
  {
    cluster.base with
    name = Printf.sprintf "%s/r%d" cluster.base.name i;
    replica = i;
    seed = cluster.base.seed + i;
  }

let run_cluster ?before_replica ?after_replica cluster =
  if cluster.replicas <= 0 then invalid_arg "Scenario.run_cluster: replicas";
  let outcomes =
    List.init cluster.replicas (fun i ->
        let before_run = Option.map (fun f -> f i) before_replica in
        let after_run = Option.map (fun f -> f i) after_replica in
        run ?before_run ?after_run (replica_spec cluster i))
  in
  let logs = List.concat_map (fun o -> o.logs) outcomes in
  let transform =
    match outcomes with
    | [] -> assert false
    | o :: _ ->
        {
          o.transform with
          Core.Transform.entry_points =
            List.concat_map (fun o -> o.transform.Core.Transform.entry_points) outcomes;
        }
  in
  let hosts =
    List.init cluster.replicas (fun i -> Service.replica_server_hostnames ~replica:i)
    |> List.concat
  in
  { cluster; outcomes; all_logs = logs; cluster_transform = transform; hosts }
