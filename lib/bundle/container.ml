module Json = Core.Json

let magic = "PTZ1"

type section = { name : string; pos : int; len : int }

(* ---- deterministic JSON ---- *)

let rec sort_json = function
  | Json.Obj pairs ->
      Json.Obj
        (List.map (fun (k, v) -> (k, sort_json v)) pairs
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))
  | Json.List items -> Json.List (List.map sort_json items)
  | (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _) as j -> j

(* ---- fixed-width integers ---- *)

let u32be n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let read_u32be s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let u64be n =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((n lsr ((7 - i) * 8)) land 0xff))
  done;
  Bytes.to_string b

let read_u64be s pos =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

(* ---- crc32 (IEEE 802.3, the zlib polynomial) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = Option.value ~default:(String.length s - pos) len in
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

(* ---- assembling ---- *)

let assemble ~manifest_extra sections =
  let section_entries =
    List.map
      (fun (name, body) ->
        Json.Obj
          [
            ("name", Json.String name);
            ("bytes", Json.Int (String.length body));
            ("crc32", Json.Int (crc32 body));
          ])
      sections
  in
  let manifest =
    sort_json
      (Json.Obj
         (( "format", Json.Int 1 )
          :: ("kind", Json.String "precisetracer-bundle")
          :: ("sections", Json.List section_entries)
          :: manifest_extra))
  in
  let manifest_str = Json.to_string ~indent:true manifest in
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf magic;
  Buffer.add_string buf (u32be (String.length manifest_str));
  Buffer.add_string buf manifest_str;
  List.iter
    (fun (name, body) ->
      Buffer.add_string buf (u32be (String.length name));
      Buffer.add_string buf name;
      Buffer.add_string buf (u64be (String.length body));
      Buffer.add_string buf body)
    sections;
  Buffer.contents buf

(* ---- parsing ---- *)

let ( let* ) = Result.bind

let manifest_sections ~what manifest =
  match Json.member "sections" manifest with
  | Some (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match (Json.member "name" item, Json.member "bytes" item, Json.member "crc32" item) with
          | Some (Json.String name), Some (Json.Int bytes), Some (Json.Int crc) ->
              Ok ((name, bytes, crc) :: acc)
          | _ -> Error (Printf.sprintf "%s: malformed section entry in bundle manifest" what))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "%s: bundle manifest has no section table" what)

let parse ~what data =
  let len = String.length data in
  if len < 8 || not (String.equal (String.sub data 0 4) magic) then
    Error (Printf.sprintf "%s: not a PTZ1 bundle at offset 0" what)
  else begin
    let manifest_len = read_u32be data 4 in
    if manifest_len < 0 || 8 + manifest_len > len then
      Error (Printf.sprintf "%s: truncated bundle manifest at offset 4" what)
    else
      match Json.of_string (String.sub data 8 manifest_len) with
      | Error e -> Error (Printf.sprintf "%s: bad bundle manifest at offset 8: %s" what e)
      | Ok manifest -> (
          let* declared = manifest_sections ~what manifest in
          (* Walk the frames, checking each against the declaration. *)
          let rec frames acc declared pos =
            if pos = len then
              match declared with
              | [] -> Ok (List.rev acc)
              | (name, _, _) :: _ ->
                  Error
                    (Printf.sprintf "%s: section %S declared but missing at offset %d" what name
                       pos)
            else if len - pos < 4 then
              Error (Printf.sprintf "%s: truncated section header at offset %d" what pos)
            else begin
              let name_len = read_u32be data pos in
              if name_len < 0 || name_len > len - pos - 4 then
                Error (Printf.sprintf "%s: section name overruns input at offset %d" what pos)
              else begin
                let name = String.sub data (pos + 4) name_len in
                let body_len_at = pos + 4 + name_len in
                if len - body_len_at < 8 then
                  Error
                    (Printf.sprintf "%s: truncated section length at offset %d" what body_len_at)
                else begin
                  let body_len = read_u64be data body_len_at in
                  let body_at = body_len_at + 8 in
                  if body_len < 0 || body_len > len - body_at then
                    Error
                      (Printf.sprintf "%s: section %S body overruns input at offset %d" what name
                         body_at)
                  else
                    match declared with
                    | [] ->
                        Error
                          (Printf.sprintf "%s: undeclared section %S at offset %d" what name pos)
                    | (dname, dbytes, dcrc) :: declared ->
                        if not (String.equal dname name) then
                          Error
                            (Printf.sprintf
                               "%s: section %S at offset %d where manifest declares %S" what name
                               pos dname)
                        else if dbytes <> body_len then
                          Error
                            (Printf.sprintf
                               "%s: section %S at offset %d is %d bytes, manifest declares %d"
                               what name pos body_len dbytes)
                        else begin
                          let crc = crc32 ~pos:body_at ~len:body_len data in
                          if crc <> dcrc then
                            Error
                              (Printf.sprintf
                                 "%s: section %S fails checksum at offset %d (crc32 %08x, \
                                  manifest declares %08x)"
                                 what name body_at crc dcrc)
                          else
                            frames
                              ({ name; pos = body_at; len = body_len } :: acc)
                              declared (body_at + body_len)
                        end
                end
              end
            end
          in
          match frames [] declared (8 + manifest_len) with
          | Error e -> Error e
          | Ok sections -> Ok (manifest, sections))
  end

let find sections name = List.find_opt (fun s -> String.equal s.name name) sections
