(** Reading a [PTZ1] bundle: sections decode in place at their offsets —
    embedded store segments are never copied out to temp files — and every
    decode error names the bundle-relative offset it was detected at.

    Decoded artifacts (the canonical record collection, the path table,
    the profiles) are cached on the handle after first use, so a [walk]
    following a [query] pays for one decode. *)

type t

val open_file : string -> (t, string) result
(** Read and validate the container framing (magic, manifest, section
    table, per-section checksums) plus the embedded store manifest.
    Section bodies are decoded lazily. *)

val of_string : ?display:string -> string -> (t, string) result
(** Same over in-memory bytes; [display] names the bundle in errors. *)

val display : t -> string
val manifest_json : t -> Core.Json.t
val sections : t -> Container.section list
val summary_json : t -> Core.Json.t option
(** The packer's summary object from the manifest. *)

val config : t -> (Core.Json.t option, string) result
(** The scenario/correlation config section, if present. *)

val store_manifest : t -> Store.Manifest.t

val read_segment : t -> Store.Segment.meta -> (Trace.Log.collection, string) result
(** Decode one embedded segment at its section offset. *)

val collection : t -> (Trace.Log.collection, string) result
(** The canonical record order: all embedded segments decoded in manifest
    order and merged exactly as {!Store.Query.merge} does. Back-link
    [(host, index)] coordinates index into this collection. Cached. *)

val query :
  ?telemetry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?jobs:int ->
  t ->
  Store.Query.predicate ->
  (Trace.Log.collection * Store.Query.stats, string) result
(** {!Store.Query.run_with} against the embedded segments: identical
    manifest pruning, parallel decode, merge and record filtering as a
    directory-backed store query. *)

val paths : t -> (Codec.decoded, string) result
(** The correlated causal paths with their back-link table. Cached. *)

val profiles : t -> (Codec.profile list, string) result
(** Pattern profiles, in {!Core.Pattern.classify} order (most frequent
    first). Cached. *)

val telemetry : t -> (Telemetry.Registry.family list option, string) result
(** The embedded telemetry snapshot, if the packer included one. *)

val resolve :
  t -> link_hosts:string array -> int * int -> (string * int * Trace.Activity.t, string) result
(** Resolve one back-link to [(hostname, record index, raw activity)]. *)

val resolve_links :
  t ->
  link_hosts:string array ->
  (int * int) list ->
  ((string * int * Trace.Activity.t) list, string) result
