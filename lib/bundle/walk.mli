(** Time-travel over one request: step its causal path tier by tier.

    A walk renders a chosen finished path as its critical-path hops —
    per-hop latency and share of the end-to-end time — and resolves every
    hop's vertex through the back-link table to the exact raw records in
    the embedded store that produced it (macro → micro in one file). *)

type record_ref = { host : string; index : int; activity : Trace.Activity.t }
(** One backing raw record: canonical coordinates plus the decoded
    activity. *)

type hop = {
  comp : Core.Latency.component;
  span_ns : int;
  share : float;  (** Fraction of the end-to-end duration, [0, 1]. *)
  at_vertex : Core.Cag.vertex;  (** The hop's arrival vertex. *)
  records : record_ref list;  (** Raw records behind that vertex. *)
}

type view = {
  cag_id : int;
  pattern : string;
  duration_ns : int;
  deformed : bool;
  begin_records : record_ref list;  (** Raw records behind the BEGIN. *)
  hops : hop list;  (** In causal order along the critical path. *)
}

val view :
  Reader.t -> ?cag_id:int -> ?pattern:string -> ?index:int -> unit -> (view, string) result
(** Select a path and walk it. Selection: an explicit [cag_id]; or the
    [index]-th member (default 0) of the named [pattern]; or, with
    neither, the first member of the most frequent pattern. *)

val pp : Format.formatter -> view -> unit
val to_json : view -> Core.Json.t
