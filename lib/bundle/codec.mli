(** Bundle payload codecs: the [PTP1] causal-path table and the pattern
    profile JSON.

    The path table serialises every correlated CAG with stable ids and a
    {e back-link table}: per vertex, the [(host, record)] coordinates of
    the raw activity records that produced it, where [host] indexes
    {!decoded.link_hosts} and [record] indexes that host's log in the
    bundle's canonical record order ({!Reader.collection}). Every path
    node in a bundle therefore resolves to the exact stored bytes behind
    it — the micro end of the paper's §5.4 macro↔micro workflow. *)

type path = {
  cag : Core.Cag.t;
  links : (int * int) list array;
      (** Back-links per vertex, indexed by causal position; pairs are
          [(host index, record index)]. *)
}

type decoded = { link_hosts : string array; paths : path list }

val magic : string
(** ["PTP1"], the section's inner magic. *)

val encode : link_hosts:string array -> path list -> string
(** Deterministic: interning tables are filled in traversal order, no
    wall-clock enters the payload. *)

val decode : string -> pos:int -> len:int -> (decoded, string) result
(** Decode the section at [pos]/[len] inside the bundle string, rebuilding
    real {!Core.Cag.t} values via [Cag.Builder] (graph shape, flags and
    ids round-trip exactly; patterns and latency breakdowns computed from
    the decoded CAGs are identical to the live run's). All errors name
    bundle-relative offsets. *)

(** {1 Pattern profiles} *)

type component_stat = { comp : Core.Latency.component; share : float; mean_s : float }

type profile = {
  name : string;  (** Tier route, e.g. ["httpd>java>mysqld>java>httpd"]. *)
  signature : string;  (** {!Core.Pattern.signature_of} canonical form. *)
  count : int;
  cag_ids : int list;  (** Member path ids, in input order. *)
  mean_total_s : float;  (** 0 when the pattern has no finished member. *)
  components : component_stat list;  (** In critical-path appearance order. *)
}

val shares : profile -> (Core.Latency.component * float) list
(** The percentage profile in the form {!Core.Analysis.compare_profiles}
    consumes. *)

val profiles_of_cags : Core.Cag.t list -> profile list
(** Classify and aggregate — the packer's source of truth, identical to
    what the live pipeline reports ({!Core.Pattern.classify} order). *)

val profiles_to_json : profile list -> Core.Json.t
val profiles_of_json : Core.Json.t -> (profile list, string) result
