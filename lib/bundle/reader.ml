module Activity = Trace.Activity
module Log = Trace.Log
module Json = Core.Json

type t = {
  display : string;
  data : string;
  manifest : Json.t;
  sections : Container.section list;
  store_manifest : Store.Manifest.t;
  mutable collection : Log.collection option;
  mutable host_logs : (string, Activity.t array) Hashtbl.t option;
  mutable decoded_paths : Codec.decoded option;
  mutable profiles : Codec.profile list option;
}

let ( let* ) = Result.bind

let section_json t section =
  match Json.of_string (String.sub t.data section.Container.pos section.Container.len) with
  | Ok j -> Ok j
  | Error e ->
      Error
        (Printf.sprintf "%s: bad %S section at offset %d: %s" t.display section.Container.name
           section.Container.pos e)

let require t name =
  match Container.find t.sections name with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: missing bundle section %S" t.display name)

let of_string ?(display = "<bundle>") data =
  let* manifest, sections = Container.parse ~what:display data in
  let t0 =
    {
      display;
      data;
      manifest;
      sections;
      store_manifest = Store.Manifest.empty;
      collection = None;
      host_logs = None;
      decoded_paths = None;
      profiles = None;
    }
  in
  let* sm_section = require t0 "store/manifest" in
  let* sm_json = section_json t0 sm_section in
  let* store_manifest =
    Result.map_error
      (fun e ->
        Printf.sprintf "%s: %S section at offset %d: %s" display "store/manifest"
          sm_section.Container.pos e)
      (Store.Manifest.of_json sm_json)
  in
  Ok { t0 with store_manifest }

let open_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let data = really_input_string ic (in_channel_length ic) in
          of_string ~display:path data)

let display t = t.display
let manifest_json t = t.manifest
let sections t = t.sections
let store_manifest t = t.store_manifest
let summary_json t = Json.member "summary" t.manifest

let config t =
  match Container.find t.sections "config" with
  | None -> Ok None
  | Some s -> Result.map (fun j -> Some j) (section_json t s)

let read_segment t (meta : Store.Segment.meta) =
  let name = Printf.sprintf "segments/%06d" meta.Store.Segment.id in
  let* s = require t name in
  Store.Segment.read_embedded ~data:t.data ~pos:s.Container.pos ~len:s.Container.len
    ~what:(Printf.sprintf "%s section %S" t.display name)
    meta

(* The canonical record order every back-link indexes into: segments
   decoded in manifest order, per-host logs merged and re-sorted — the
   same merge {!Store.Query} performs, so coordinates survive store
   compaction (which preserves records and query answers). *)
let collection t =
  match t.collection with
  | Some c -> Ok c
  | None ->
      let* collections =
        List.fold_left
          (fun acc meta ->
            let* acc = acc in
            let* c = read_segment t meta in
            Ok (c :: acc))
          (Ok []) t.store_manifest.Store.Manifest.segments
        |> Result.map List.rev
      in
      let c = Store.Query.merge collections in
      t.collection <- Some c;
      Ok c

let query ?telemetry ?pool ?jobs t predicate =
  Store.Query.run_with ?telemetry ?pool ?jobs ~read:(read_segment t) t.store_manifest predicate

let paths t =
  match t.decoded_paths with
  | Some d -> Ok d
  | None ->
      let* s = require t "paths" in
      let* d =
        Result.map_error
          (fun e -> Printf.sprintf "%s: paths section: %s" t.display e)
          (Codec.decode t.data ~pos:s.Container.pos ~len:s.Container.len)
      in
      t.decoded_paths <- Some d;
      Ok d

let profiles t =
  match t.profiles with
  | Some p -> Ok p
  | None ->
      let* s = require t "patterns" in
      let* j = section_json t s in
      let* p =
        Result.map_error
          (fun e ->
            Printf.sprintf "%s: %S section at offset %d: %s" t.display "patterns"
              s.Container.pos e)
          (Codec.profiles_of_json j)
      in
      t.profiles <- Some p;
      Ok p

let telemetry t =
  match Container.find t.sections "telemetry" with
  | None -> Ok None
  | Some s ->
      let* j = section_json t s in
      Result.map
        (fun families -> Some families)
        (Result.map_error
           (fun e ->
             Printf.sprintf "%s: %S section at offset %d: %s" t.display "telemetry"
               s.Container.pos e)
           (Telemetry.Export.of_json j))

let host_logs t =
  match t.host_logs with
  | Some h -> Ok h
  | None ->
      let* c = collection t in
      let h = Hashtbl.create 8 in
      List.iter (fun log -> Hashtbl.replace h (Log.hostname log) (Array.of_list (Log.to_list log))) c;
      t.host_logs <- Some h;
      Ok h

let resolve t ~link_hosts (host, index) =
  if host < 0 || host >= Array.length link_hosts then
    Error (Printf.sprintf "%s: back-link host index %d out of range" t.display host)
  else begin
    let hostname = link_hosts.(host) in
    let* logs = host_logs t in
    match Hashtbl.find_opt logs hostname with
    | None -> Error (Printf.sprintf "%s: back-link names unknown host %S" t.display hostname)
    | Some arr ->
        if index < 0 || index >= Array.length arr then
          Error
            (Printf.sprintf "%s: back-link record index %d out of range for host %S (%d records)"
               t.display index hostname (Array.length arr))
        else Ok (hostname, index, arr.(index))
  end

let resolve_links t ~link_hosts links =
  List.fold_left
    (fun acc link ->
      let* acc = acc in
      let* r = resolve t ~link_hosts link in
      Ok (r :: acc))
    (Ok []) links
  |> Result.map List.rev
