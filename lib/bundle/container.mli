(** The [PTZ1] single-file bundle container.

    A bundle is a self-contained recording of one tracing run: raw store
    segments, the correlated causal paths with back-links into those
    segments, pattern profiles, the scenario/correlation configuration and
    (optionally) a telemetry snapshot — everything §5.4 debugging needs,
    in one sharable file.

    Layout:

    {v
    "PTZ1"   4-byte magic
    u32be    manifest length M
    M bytes  manifest JSON (sorted keys)
    ...      framed sections, each:
               u32be   name length N
               N bytes section name
               u64be   body length L
               L bytes body
    v}

    The manifest carries [format], [kind], a [sections] table (name, byte
    count and crc32 per section, in file order) and a summary written by
    {!Pack}. Section bodies are opaque here; {!Reader} knows the names.

    Bundles are byte-deterministic: {!assemble} is a pure function of its
    inputs (sorted JSON keys, fixed section order chosen by the packer, no
    wall-clock anywhere), so packing identical inputs twice yields
    identical files. *)

val magic : string
(** ["PTZ1"]. *)

type section = { name : string; pos : int; len : int }
(** A parsed section: [pos]/[len] delimit the body inside the bundle
    string (bundle-relative offsets). *)

val sort_json : Core.Json.t -> Core.Json.t
(** Recursively sort object keys — the canonical form every JSON payload
    in a bundle is serialised in. *)

val crc32 : ?pos:int -> ?len:int -> string -> int
(** IEEE CRC-32 (the zlib polynomial) of a substring; guards each section
    against silent corruption. *)

val assemble : manifest_extra:(string * Core.Json.t) list -> (string * string) list -> string
(** [assemble ~manifest_extra sections] builds the whole bundle from
    [(name, body)] sections, in the given order. [manifest_extra] adds
    summary fields to the manifest object. *)

val parse : what:string -> string -> (Core.Json.t * section list, string) result
(** Validate the framing: magic, manifest JSON, every declared section
    present with the declared length and checksum, no trailing or
    undeclared bytes. [what] names the bundle in error messages; every
    error names the bundle-relative offset it was detected at. *)

val find : section list -> string -> section option
