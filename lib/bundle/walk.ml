module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time
module Cag = Core.Cag
module Latency = Core.Latency
module Json = Core.Json

type record_ref = { host : string; index : int; activity : Activity.t }

type hop = {
  comp : Latency.component;
  span_ns : int;
  share : float;
  at_vertex : Cag.vertex;
  records : record_ref list;
}

type view = {
  cag_id : int;
  pattern : string;
  duration_ns : int;
  deformed : bool;
  begin_records : record_ref list;
  hops : hop list;
}

let ( let* ) = Result.bind

let find_path decoded reader ?cag_id ?pattern ?(index = 0) () =
  match cag_id with
  | Some id -> (
      match
        List.find_opt (fun (p : Codec.path) -> p.Codec.cag.Cag.cag_id = id) decoded.Codec.paths
      with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "%s: no path with id %d" (Reader.display reader) id))
  | None ->
      let* profiles = Reader.profiles reader in
      let* profile =
        match pattern with
        | None -> (
            match profiles with
            | p :: _ -> Ok p
            | [] -> Error (Printf.sprintf "%s: bundle holds no patterns" (Reader.display reader)))
        | Some name -> (
            match List.find_opt (fun (p : Codec.profile) -> String.equal p.Codec.name name) profiles with
            | Some p -> Ok p
            | None ->
                Error
                  (Printf.sprintf "%s: no pattern %S (have: %s)" (Reader.display reader) name
                     (String.concat ", " (List.map (fun (p : Codec.profile) -> p.Codec.name) profiles))))
      in
      let* id =
        match List.nth_opt profile.Codec.cag_ids index with
        | Some id -> Ok id
        | None ->
            Error
              (Printf.sprintf "%s: pattern %S has %d members, index %d out of range"
                 (Reader.display reader) profile.Codec.name (List.length profile.Codec.cag_ids) index)
      in
      let* p =
        match
          List.find_opt (fun (p : Codec.path) -> p.Codec.cag.Cag.cag_id = id) decoded.Codec.paths
        with
        | Some p -> Ok p
        | None ->
            Error (Printf.sprintf "%s: pattern member %d missing from paths" (Reader.display reader) id)
      in
      Ok p

let view reader ?cag_id ?pattern ?index () =
  let* decoded = Reader.paths reader in
  let* path = find_path decoded reader ?cag_id ?pattern ?index () in
  let cag = path.Codec.cag in
  if not (Cag.is_finished cag) then
    Error (Printf.sprintf "%s: path %d is unfinished" (Reader.display reader) cag.Cag.cag_id)
  else begin
    let link_hosts = decoded.Codec.link_hosts in
    let vertices = Cag.vertices cag in
    let position = Hashtbl.create 16 in
    List.iteri (fun i (v : Cag.vertex) -> Hashtbl.replace position v.Cag.vid i) vertices;
    let records_of v =
      let i = Hashtbl.find position v.Cag.vid in
      let links = if i < Array.length path.Codec.links then path.Codec.links.(i) else [] in
      let* resolved = Reader.resolve_links reader ~link_hosts links in
      Ok (List.map (fun (host, index, activity) -> { host; index; activity }) resolved)
    in
    let duration_ns = Sim_time.span_ns (Cag.duration cag) in
    let hops =
      try Ok (Latency.critical_path cag) with Invalid_argument msg ->
        Error (Printf.sprintf "%s: path %d: %s" (Reader.display reader) cag.Cag.cag_id msg)
    in
    let* hops = hops in
    let* rev_hops =
      List.fold_left
        (fun acc (h : Latency.hop) ->
          let* acc = acc in
          let span_ns = Sim_time.span_ns h.Latency.span in
          let share =
            if duration_ns = 0 then 0.0 else float_of_int span_ns /. float_of_int duration_ns
          in
          let* records = records_of h.Latency.child in
          Ok ({ comp = h.Latency.comp; span_ns; share; at_vertex = h.Latency.child; records } :: acc))
        (Ok []) hops
    in
    let* begin_records = records_of (Cag.root cag) in
    Ok
      {
        cag_id = cag.Cag.cag_id;
        pattern = Core.Pattern.name_of cag;
        duration_ns;
        deformed = Cag.is_deformed cag;
        begin_records;
        hops = List.rev rev_hops;
      }
  end

let pp_record ppf r =
  let a = r.activity in
  Format.fprintf ppf "%s[%d] %a" r.host r.index Activity.pp a

let pp ppf v =
  Format.fprintf ppf "@[<v>path %d  %s  %.3f ms%s" v.cag_id v.pattern
    (float_of_int v.duration_ns /. 1e6)
    (if v.deformed then "  (deformed)" else "");
  Format.fprintf ppf "@,BEGIN";
  List.iter (fun r -> Format.fprintf ppf "@,    <- %a" pp_record r) v.begin_records;
  List.iter
    (fun h ->
      Format.fprintf ppf "@,%-16s %10.3f ms  %5.1f%%"
        (Latency.component_label h.comp)
        (float_of_int h.span_ns /. 1e6)
        (h.share *. 100.0);
      List.iter (fun r -> Format.fprintf ppf "@,    <- %a" pp_record r) h.records)
    v.hops;
  Format.fprintf ppf "@]"

let record_to_json r =
  Json.Obj
    [
      ("host", Json.String r.host);
      ("index", Json.Int r.index);
      ("kind", Json.String (Activity.kind_to_string r.activity.Activity.kind));
      ("timestamp_ns", Json.Int (Sim_time.to_ns r.activity.timestamp));
      ("program", Json.String r.activity.context.program);
      ("size", Json.Int r.activity.message.size);
    ]

let to_json v =
  Json.Obj
    [
      ("cag_id", Json.Int v.cag_id);
      ("pattern", Json.String v.pattern);
      ("duration_ns", Json.Int v.duration_ns);
      ("deformed", Json.Bool v.deformed);
      ("begin_records", Json.List (List.map record_to_json v.begin_records));
      ( "hops",
        Json.List
          (List.map
             (fun h ->
               Json.Obj
                 [
                   ("component", Json.String (Latency.component_label h.comp));
                   ("span_ns", Json.Int h.span_ns);
                   ("share", Json.Float h.share);
                   ("records", Json.List (List.map record_to_json h.records));
                 ])
             v.hops) );
    ]
