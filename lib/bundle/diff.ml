module Analysis = Core.Analysis
module Latency = Core.Latency
module Json = Core.Json

type mix_delta = {
  name : string;
  count_a : int;
  count_b : int;
  freq_a : float;
  freq_b : float;
}

type pattern_report = {
  p_name : string;
  p_count_a : int;
  p_count_b : int;
  report : Analysis.report;
}

type t = {
  bundle_a : string;
  bundle_b : string;
  total_a : int;
  total_b : int;
  mix : mix_delta list;
  reports : pattern_report list;
  culprit : Analysis.suspect option;
}

let ( let* ) = Result.bind

let totals profiles = List.fold_left (fun acc (p : Codec.profile) -> acc + p.Codec.count) 0 profiles

let find_profile profiles name =
  List.find_opt (fun (p : Codec.profile) -> String.equal p.Codec.name name) profiles

let diff a b =
  let* pa = Reader.profiles a in
  let* pb = Reader.profiles b in
  let total_a = totals pa and total_b = totals pb in
  let freq total count = if total = 0 then 0.0 else float_of_int count /. float_of_int total in
  let names =
    List.map (fun (p : Codec.profile) -> p.Codec.name) pb
    @ List.filter_map
        (fun (p : Codec.profile) ->
          if find_profile pb p.Codec.name = None then Some p.Codec.name else None)
        pa
  in
  let mix =
    List.map
      (fun name ->
        let count_a = match find_profile pa name with Some p -> p.Codec.count | None -> 0 in
        let count_b = match find_profile pb name with Some p -> p.Codec.count | None -> 0 in
        { name; count_a; count_b; freq_a = freq total_a count_a; freq_b = freq total_b count_b })
      names
    |> List.sort (fun x y ->
           compare
             (Float.abs (y.freq_b -. y.freq_a), y.name)
             (Float.abs (x.freq_b -. x.freq_a), x.name))
  in
  (* Per-pattern latency-share reports for patterns both bundles profiled,
     in bundle-B frequency order (classify order of B). *)
  let reports =
    List.filter_map
      (fun (pb_profile : Codec.profile) ->
        match find_profile pa pb_profile.Codec.name with
        | Some pa_profile when pa_profile.Codec.components <> [] && pb_profile.Codec.components <> []
          ->
            Some
              {
                p_name = pb_profile.Codec.name;
                p_count_a = pa_profile.Codec.count;
                p_count_b = pb_profile.Codec.count;
                report =
                  Analysis.compare_profiles ~baseline:(Codec.shares pa_profile)
                    ~observed:(Codec.shares pb_profile);
              }
        | Some _ | None -> None)
      pb
  in
  (* The culprit: top suspect of the most frequent shared pattern — the
     same selection the offline diagnose command defaults to. *)
  let culprit =
    match reports with
    | { report = { Analysis.suspects = s :: _; _ }; _ } :: _ -> Some s
    | _ -> None
  in
  Ok
    {
      bundle_a = Reader.display a;
      bundle_b = Reader.display b;
      total_a;
      total_b;
      mix;
      reports;
      culprit;
    }

let pp ppf d =
  Format.fprintf ppf "@[<v>A: %s (%d paths)@,B: %s (%d paths)@," d.bundle_a d.total_a d.bundle_b
    d.total_b;
  Format.fprintf ppf "@,pattern mix:";
  List.iter
    (fun m ->
      Format.fprintf ppf "@,  %-48s %6d -> %6d  (%5.1f%% -> %5.1f%%)" m.name m.count_a m.count_b
        (m.freq_a *. 100.0) (m.freq_b *. 100.0))
    d.mix;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,@,pattern %s (%d vs %d paths):@,%a" r.p_name r.p_count_a r.p_count_b
        Analysis.pp_report r.report)
    d.reports;
  (match d.culprit with
  | Some s ->
      Format.fprintf ppf "@,@,culprit: %s (severity %.2f) — %s"
        (Analysis.subject_label s.Analysis.subject)
        s.Analysis.severity s.Analysis.reason
  | None -> Format.fprintf ppf "@,@,culprit: none (no shared pattern with profiles)");
  Format.fprintf ppf "@]"

let to_json d =
  let delta (x : Analysis.delta) =
    Json.Obj
      [
        ("component", Json.String (Latency.component_label x.Analysis.comp));
        ("baseline_pct", Json.Float x.Analysis.baseline_pct);
        ("observed_pct", Json.Float x.Analysis.observed_pct);
        ("change_pp", Json.Float x.Analysis.change_pp);
      ]
  in
  let suspect (s : Analysis.suspect) =
    Json.Obj
      [
        ("subject", Json.String (Analysis.subject_label s.Analysis.subject));
        ("severity", Json.Float s.Analysis.severity);
        ("reason", Json.String s.Analysis.reason);
      ]
  in
  Json.Obj
    [
      ("bundle_a", Json.String d.bundle_a);
      ("bundle_b", Json.String d.bundle_b);
      ("total_a", Json.Int d.total_a);
      ("total_b", Json.Int d.total_b);
      ( "mix",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("pattern", Json.String m.name);
                   ("count_a", Json.Int m.count_a);
                   ("count_b", Json.Int m.count_b);
                   ("freq_a", Json.Float m.freq_a);
                   ("freq_b", Json.Float m.freq_b);
                 ])
             d.mix) );
      ( "patterns",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("pattern", Json.String r.p_name);
                   ("count_a", Json.Int r.p_count_a);
                   ("count_b", Json.Int r.p_count_b);
                   ("deltas", Json.List (List.map delta r.report.Analysis.deltas));
                   ("suspects", Json.List (List.map suspect r.report.Analysis.suspects));
                 ])
             d.reports) );
      ("culprit", match d.culprit with Some s -> suspect s | None -> Json.Null);
    ]
