(** Packing a run into a [PTZ1] bundle.

    The packer embeds the store (segment bytes verbatim for a store
    directory; synthetic no-reduction segments for an in-memory
    collection), correlates the embedded records, and serialises the
    resulting causal paths with a back-link per vertex source resolved
    against the canonical record order ({!Reader.collection}). Pattern
    profiles, the correlation configuration, an optional scenario
    description and an optional telemetry snapshot ride along.

    Determinism: identical inputs produce byte-identical bundles — the
    payload carries no wall-clock timestamps (activity timestamps are
    virtual sim-time), JSON keys are sorted, section order is fixed, and
    correlation output is byte-identical at any [jobs] (see
    {!Core.Shard}). The telemetry snapshot is caller-provided, so leaving
    it out keeps repacking reproducible. *)

type summary = {
  out_path : string;
  bytes : int;  (** Total bundle size. *)
  records : int;
  hosts : string list;  (** Canonical (sorted) hostnames. *)
  segments : int;
  store_bytes : int;  (** Embedded segment bytes (headers + payloads). *)
  cags : int;  (** Finished causal paths packed. *)
  deformed : int;  (** Deformed paths: finished-deformed plus unfinished. *)
  patterns : int;
  links : int;  (** Back-links written. *)
  unresolved_links : int;  (** Sources with no matching stored record. *)
}

val pp_summary : Format.formatter -> summary -> unit

val pack :
  ?telemetry:Telemetry.Registry.family list ->
  ?scenario:Core.Json.t ->
  ?jobs:int ->
  ?roll_records:int ->
  config:Core.Correlator.config ->
  source:[ `Store_dir of string | `Logs of Trace.Log.collection ] ->
  path:string ->
  unit ->
  (summary, string) result
(** Write the bundle to [path] (atomically, via a temp file + rename).
    [roll_records] (default 65536) sizes the synthetic segments of a
    [`Logs] source; a [`Store_dir] source keeps its segmentation. *)
