module Activity = Trace.Activity
module Address = Simnet.Address
module Log = Trace.Log
module Sim_time = Simnet.Sim_time
module Cag = Core.Cag
module Correlator = Core.Correlator
module Shard = Core.Shard
module Json = Core.Json

type summary = {
  out_path : string;
  bytes : int;
  records : int;
  hosts : string list;
  segments : int;
  store_bytes : int;
  cags : int;
  deformed : int;
  patterns : int;
  links : int;
  unresolved_links : int;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>bundle %s: %d bytes@,%d records on %d hosts in %d segments (%d store bytes)@,\
     %d paths (%d deformed), %d patterns, %d back-links (%d unresolved)@]"
    s.out_path s.bytes s.records (List.length s.hosts) s.segments s.store_bytes s.cags s.deformed
    s.patterns s.links s.unresolved_links

let ( let* ) = Result.bind

let section_of_segment id = Printf.sprintf "segments/%06d" id

(* ---- raw-record index: resolving vertex sources to store coordinates ----

   [Transform.classify] preserves timestamp, context, flow and size and
   rewrites only the kind (entry RECEIVE -> BEGIN, entry SEND -> END), so
   a vertex source matches its raw record on everything but possibly the
   kind. Identical records are consumed in deterministic order (paths in
   completion order, vertices in causal order, sources in observation
   order), so packing is reproducible byte for byte. *)

let key_of (a : Activity.t) kind =
  let c = a.Activity.context in
  let f = a.Activity.message.flow in
  ( Sim_time.to_ns a.timestamp,
    c.Activity.host,
    c.program,
    c.pid,
    c.tid,
    Address.ip_to_int f.src.ip,
    f.src.port,
    Address.ip_to_int f.dst.ip,
    f.dst.port,
    a.message.size,
    kind )

let raw_kind_of = function
  | Activity.Begin -> Some Activity.Receive
  | Activity.End_ -> Some Activity.Send
  | Activity.Send | Activity.Receive -> None

let build_index collection =
  let hosts = Array.of_list (List.map Log.hostname collection) in
  let host_idx = Hashtbl.create 8 in
  Array.iteri (fun i h -> Hashtbl.replace host_idx h i) hosts;
  let index = Hashtbl.create 4096 in
  List.iteri
    (fun hi log ->
      List.iteri
        (fun ri (a : Activity.t) ->
          let key = key_of a a.Activity.kind in
          let q =
            match Hashtbl.find_opt index key with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace index key q;
                q
          in
          Queue.push (hi, ri) q)
        (Log.to_list log))
    collection;
  (hosts, index)

let resolve_source index (a : Activity.t) =
  let take key =
    match Hashtbl.find_opt index key with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | Some _ | None -> None
  in
  match take (key_of a a.Activity.kind) with
  | Some link -> Some link
  | None -> (
      match raw_kind_of a.Activity.kind with
      | Some raw -> take (key_of a raw)
      | None -> None)

let link_paths collection cags =
  let hosts, index = build_index collection in
  let links_total = ref 0 in
  let unresolved = ref 0 in
  let paths =
    List.map
      (fun cag ->
        let vertices = Cag.vertices cag in
        let links =
          Array.of_list
            (List.map
               (fun v ->
                 List.filter_map
                   (fun src ->
                     match resolve_source index src with
                     | Some link ->
                         incr links_total;
                         Some link
                     | None ->
                         incr unresolved;
                         None)
                   (Cag.sources v))
               vertices)
        in
        { Codec.cag; links })
      cags
  in
  (hosts, paths, !links_total, !unresolved)

(* ---- config section ---- *)

let endpoint_str (e : Address.endpoint) = Format.asprintf "%a" Address.pp_endpoint e

let config_json ~(config : Correlator.config) ~scenario ~source_label =
  let t = config.Correlator.transform in
  Json.Obj
    [
      ("scenario", Option.value ~default:Json.Null scenario);
      ("source", Json.String source_label);
      ( "correlate",
        Json.Obj
          [
            ("window_ns", Json.Int (Sim_time.span_ns config.Correlator.window));
            ("skew_allowance_ns", Json.Int (Sim_time.span_ns config.skew_allowance));
            ( "entry_points",
              Json.List
                (List.map (fun e -> Json.String (endpoint_str e)) t.Core.Transform.entry_points) );
            ( "drop_programs",
              Json.List (List.map (fun p -> Json.String p) t.Core.Transform.drop_programs) );
            ("drop_ports", Json.List (List.map (fun p -> Json.Int p) t.Core.Transform.drop_ports));
          ] );
    ]

(* ---- sources ---- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

(* Embed a store directory verbatim: the exact segment bytes, so packing
   is lossless and deterministic with respect to the store's content. *)
let of_store_dir dir =
  let* manifest = Store.Manifest.load ~dir in
  let* segments =
    List.fold_left
      (fun acc (meta : Store.Segment.meta) ->
        let* acc = acc in
        let* data = read_file (Filename.concat dir meta.Store.Segment.file) in
        Ok ((meta, data) :: acc))
      (Ok []) manifest.Store.Manifest.segments
    |> Result.map List.rev
  in
  let* collections =
    List.fold_left
      (fun acc (meta, _) ->
        let* acc = acc in
        let* c = Store.Segment.read ~dir meta in
        Ok (c :: acc))
      (Ok []) segments
    |> Result.map List.rev
  in
  Ok (manifest, segments, Store.Query.merge collections)

(* Roll a raw collection into synthetic segments, as a store ingest with
   no reduction would. *)
let of_logs ?(roll_records = 65_536) collection =
  let records = Log.total collection in
  if records = 0 then Error "pack: empty collection"
  else begin
    let batches =
      if records <= roll_records then [ collection ]
      else begin
        (* Cut on the time-merged feed every [roll_records] records, then
           regroup per host — mirrors the writer's roll behaviour. *)
        let all =
          List.concat_map (fun log -> List.map (fun a -> (Log.hostname log, a)) (Log.to_list log))
            collection
          |> List.stable_sort (fun (_, a) (_, b) -> Activity.compare_by_time a b)
        in
        let rec cut acc batch n = function
          | [] -> List.rev (if batch = [] then acc else List.rev batch :: acc)
          | x :: rest ->
              if n + 1 >= roll_records then cut (List.rev (x :: batch) :: acc) [] 0 rest
              else cut acc (x :: batch) (n + 1) rest
        in
        let to_collection batch =
          let by_host = Hashtbl.create 8 in
          List.iter
            (fun (h, a) ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt by_host h) in
              Hashtbl.replace by_host h (a :: prev))
            batch;
          Hashtbl.fold (fun h acts acc -> (h, acts) :: acc) by_host []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          |> List.map (fun (hostname, acts) -> Log.of_list ~hostname (List.rev acts))
        in
        List.map to_collection (cut [] [] 0 all)
      end
    in
    let manifest, rev_segments =
      List.fold_left
        (fun (manifest, acc) batch ->
          let id = manifest.Store.Manifest.next_id in
          let meta, data = Store.Segment.encode ~id ~policy:"none" batch in
          (Store.Manifest.add manifest meta, (meta, data) :: acc))
        (Store.Manifest.empty, []) batches
    in
    Ok (manifest, List.rev rev_segments, Store.Query.merge batches)
  end

(* ---- packing ---- *)

let summary_json ~summary ~min_ts_ns ~max_ts_ns =
  ( "summary",
    Json.Obj
      [
        ("records", Json.Int summary.records);
        ("hosts", Json.List (List.map (fun h -> Json.String h) summary.hosts));
        ("segments", Json.Int summary.segments);
        ("store_bytes", Json.Int summary.store_bytes);
        ("min_ts_ns", Json.Int min_ts_ns);
        ("max_ts_ns", Json.Int max_ts_ns);
        ("cags", Json.Int summary.cags);
        ("deformed", Json.Int summary.deformed);
        ("patterns", Json.Int summary.patterns);
        ("links", Json.Int summary.links);
        ("unresolved_links", Json.Int summary.unresolved_links);
      ] )

let write_file ~path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
  Sys.rename tmp path

let pack ?telemetry ?scenario ?jobs ?roll_records ~config ~source ~path () =
  let* manifest, segments, collection =
    match source with
    | `Store_dir dir -> of_store_dir dir
    | `Logs logs -> of_logs ?roll_records logs
  in
  if Log.total collection = 0 then Error "pack: store holds no records"
  else begin
    let source_label =
      match source with `Store_dir dir -> "store:" ^ Filename.basename dir | `Logs _ -> "logs"
    in
    let result = Shard.correlate ?jobs config collection in
    let cags = result.Correlator.cags in
    let hosts, paths, links, unresolved = link_paths collection cags in
    let profiles = Codec.profiles_of_cags cags in
    let json_body j = Json.to_string ~indent:true (Container.sort_json j) in
    let sections =
      [
        ("config", json_body (config_json ~config ~scenario ~source_label));
        ("store/manifest", json_body (Store.Manifest.to_json manifest));
      ]
      @ List.map
          (fun ((meta : Store.Segment.meta), data) -> (section_of_segment meta.Store.Segment.id, data))
          segments
      @ [
          ("paths", Codec.encode ~link_hosts:hosts paths);
          ("patterns", json_body (Codec.profiles_to_json profiles));
        ]
      @
      match telemetry with
      | Some families -> [ ("telemetry", json_body (Telemetry.Export.to_json families)) ]
      | None -> []
    in
    let min_ts_ns, max_ts_ns =
      List.fold_left
        (fun (lo, hi) ((m : Store.Segment.meta), _) ->
          (min lo m.Store.Segment.min_ts_ns, max hi m.Store.Segment.max_ts_ns))
        (max_int, min_int) segments
    in
    let summary =
      {
        out_path = path;
        bytes = 0;
        records = Log.total collection;
        hosts = Array.to_list hosts;
        segments = List.length segments;
        store_bytes = List.fold_left (fun acc (_, d) -> acc + String.length d) 0 segments;
        cags = List.length cags;
        deformed = List.length (List.filter Cag.is_deformed cags) + List.length result.deformed;
        patterns = List.length profiles;
        links;
        unresolved_links = unresolved;
      }
    in
    let data =
      Container.assemble ~manifest_extra:[ summary_json ~summary ~min_ts_ns ~max_ts_ns ] sections
    in
    write_file ~path data;
    Ok { summary with bytes = String.length data }
  end
