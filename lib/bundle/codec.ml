module Activity = Trace.Activity
module Address = Simnet.Address
module Sim_time = Simnet.Sim_time
module B = Trace.Binary_format
module Cag = Core.Cag
module Pattern = Core.Pattern
module Aggregate = Core.Aggregate
module Latency = Core.Latency
module Json = Core.Json

let magic = "PTP1"

type path = { cag : Cag.t; links : (int * int) list array }
type decoded = { link_hosts : string array; paths : path list }

let kind_code = function
  | Activity.Begin -> 0
  | Activity.Send -> 1
  | Activity.End_ -> 2
  | Activity.Receive -> 3

let kind_of_code pos = function
  | 0 -> Activity.Begin
  | 1 -> Activity.Send
  | 2 -> Activity.End_
  | 3 -> Activity.Receive
  | c -> raise (B.Corrupt (pos, Printf.sprintf "bad kind code %d" c))

let edge_code = function Cag.Context_edge -> 0 | Cag.Message_edge -> 1

let edge_of_code pos = function
  | 0 -> Cag.Context_edge
  | 1 -> Cag.Message_edge
  | c -> raise (B.Corrupt (pos, Printf.sprintf "bad edge code %d" c))

(* ---- encoding ---- *)

(* Same interning discipline as PTB1: strings, contexts and flows repeat
   across most vertices, so each vertex carries small table indices. The
   vertex list of a CAG is its causal order; local vertex ids are list
   positions, and parent references are backward deltas. *)
let encode ~link_hosts paths =
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf magic;
  let strings = Hashtbl.create 32 in
  let rev_strings = ref [] in
  let intern_string s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length strings in
        Hashtbl.replace strings s i;
        rev_strings := s :: !rev_strings;
        i
  in
  let contexts = Hashtbl.create 64 in
  let rev_contexts = ref [] in
  let intern_context (c : Activity.context) =
    let key = (c.Activity.host, c.program, c.pid, c.tid) in
    match Hashtbl.find_opt contexts key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length contexts in
        Hashtbl.replace contexts key i;
        rev_contexts := c :: !rev_contexts;
        i
  in
  let flows = Address.Flow_table.create 64 in
  let rev_flows = ref [] in
  let intern_flow f =
    match Address.Flow_table.find_opt flows f with
    | Some i -> i
    | None ->
        let i = Address.Flow_table.length flows in
        Address.Flow_table.replace flows f i;
        rev_flows := f :: !rev_flows;
        i
  in
  List.iter
    (fun { cag; _ } ->
      List.iter
        (fun (v : Cag.vertex) ->
          let a = v.Cag.activity in
          ignore (intern_string a.Activity.context.host);
          ignore (intern_string a.Activity.context.program);
          ignore (intern_context a.Activity.context);
          ignore (intern_flow a.Activity.message.flow))
        (Cag.vertices cag))
    paths;
  B.put_uvarint buf (Hashtbl.length strings);
  List.iter (B.put_string buf) (List.rev !rev_strings);
  B.put_uvarint buf (Hashtbl.length contexts);
  List.iter
    (fun (c : Activity.context) ->
      B.put_uvarint buf (intern_string c.Activity.host);
      B.put_uvarint buf (intern_string c.program);
      B.put_uvarint buf c.pid;
      B.put_uvarint buf c.tid)
    (List.rev !rev_contexts);
  B.put_uvarint buf (Address.Flow_table.length flows);
  List.iter
    (fun (f : Address.flow) ->
      B.put_uvarint buf (Address.ip_to_int f.src.ip);
      B.put_uvarint buf f.src.port;
      B.put_uvarint buf (Address.ip_to_int f.dst.ip);
      B.put_uvarint buf f.dst.port)
    (List.rev !rev_flows);
  B.put_uvarint buf (Array.length link_hosts);
  Array.iter (fun h -> B.put_uvarint buf (intern_string h)) link_hosts;
  B.put_uvarint buf (List.length paths);
  List.iter
    (fun { cag; links } ->
      let vertices = Cag.vertices cag in
      let local = Hashtbl.create 16 in
      List.iteri (fun i (v : Cag.vertex) -> Hashtbl.replace local v.Cag.vid i) vertices;
      B.put_uvarint buf cag.Cag.cag_id;
      let flags =
        (if Cag.is_finished cag then 1 else 0) lor if Cag.is_deformed cag then 2 else 0
      in
      B.put_uvarint buf flags;
      B.put_uvarint buf (List.length vertices);
      let prev_ts = ref 0 in
      List.iteri
        (fun i (v : Cag.vertex) ->
          let a = v.Cag.activity in
          B.put_uvarint buf (kind_code a.Activity.kind);
          let ts = Sim_time.to_ns a.timestamp in
          B.put_varint buf (ts - !prev_ts);
          prev_ts := ts;
          B.put_uvarint buf (intern_context a.context);
          B.put_uvarint buf (intern_flow a.message.flow);
          B.put_uvarint buf a.message.size;
          (* parents in addition order, as backward position deltas *)
          let parents = List.rev v.Cag.parents in
          B.put_uvarint buf (List.length parents);
          List.iter
            (fun (kind, (p : Cag.vertex)) ->
              B.put_uvarint buf (edge_code kind);
              B.put_uvarint buf (i - Hashtbl.find local p.Cag.vid))
            parents;
          let vlinks = if i < Array.length links then links.(i) else [] in
          B.put_uvarint buf (List.length vlinks);
          List.iter
            (fun (h, r) ->
              B.put_uvarint buf h;
              B.put_uvarint buf r)
            vlinks)
        vertices)
    paths;
  Buffer.contents buf

(* ---- decoding ---- *)

(* [pos]/[len] delimit the paths section inside [data] (the whole bundle
   string), so [B.Corrupt] offsets — and hence the error messages — are
   bundle-relative. *)
let decode data ~pos ~len =
  if pos < 0 || len < 4 || pos + len > String.length data then
    Error (Printf.sprintf "corrupt at offset %d: bad paths section region" pos)
  else if not (String.equal (String.sub data pos 4) magic) then
    Error (Printf.sprintf "corrupt at offset %d: no PTP1 magic" pos)
  else begin
    let r = { B.data; pos = pos + 4; limit = pos + len } in
    try
      let string_count = B.get_count r "string table" in
      let strings = Array.init string_count (fun _ -> B.get_string r) in
      let lookup_string i =
        if i < 0 || i >= string_count then
          raise (B.Corrupt (r.B.pos, "string index out of range"));
        strings.(i)
      in
      let context_count = B.get_count r "context table" in
      let contexts =
        Array.init context_count (fun _ ->
            let host = lookup_string (B.get_uvarint r) in
            let program = lookup_string (B.get_uvarint r) in
            let pid = B.get_uvarint r in
            let tid = B.get_uvarint r in
            { Activity.host; program; pid; tid })
      in
      let lookup_context i =
        if i < 0 || i >= context_count then
          raise (B.Corrupt (r.B.pos, "context index out of range"));
        contexts.(i)
      in
      let flow_count = B.get_count r "flow table" in
      let flows =
        Array.init flow_count (fun _ ->
            let src_ip = Address.ip_of_int (B.get_uvarint r) in
            let src_port = B.get_uvarint r in
            let dst_ip = Address.ip_of_int (B.get_uvarint r) in
            let dst_port = B.get_uvarint r in
            Address.flow
              ~src:(Address.endpoint src_ip src_port)
              ~dst:(Address.endpoint dst_ip dst_port))
      in
      let lookup_flow i =
        if i < 0 || i >= flow_count then raise (B.Corrupt (r.B.pos, "flow index out of range"));
        flows.(i)
      in
      let host_count = B.get_count r "link host table" in
      let link_hosts = Array.init host_count (fun _ -> lookup_string (B.get_uvarint r)) in
      let path_count = B.get_count r "path" in
      let paths =
        List.init path_count (fun _ ->
            let cag_id = B.get_uvarint r in
            let flags = B.get_uvarint r in
            let vertex_count = B.get_count r "vertex" in
            if vertex_count = 0 then raise (B.Corrupt (r.B.pos, "empty CAG"));
            let vertices = Array.make vertex_count None in
            let prev_ts = ref 0 in
            let cag = ref None in
            let links = Array.make vertex_count [] in
            for i = 0 to vertex_count - 1 do
              let kind = kind_of_code r.B.pos (B.get_uvarint r) in
              let ts = !prev_ts + B.get_varint r in
              prev_ts := ts;
              let context = lookup_context (B.get_uvarint r) in
              let flow = lookup_flow (B.get_uvarint r) in
              let size = B.get_uvarint r in
              let a =
                { Activity.kind; timestamp = Sim_time.of_ns ts; context; message = { flow; size } }
              in
              let v = Cag.Builder.fresh_vertex a in
              vertices.(i) <- Some v;
              (match !cag with
              | None -> cag := Some (Cag.Builder.create ~cag_id v)
              | Some c -> Cag.Builder.adopt c v);
              let parent_count = B.get_count r "parent" in
              for _ = 1 to parent_count do
                let kind = edge_of_code r.B.pos (B.get_uvarint r) in
                let delta = B.get_uvarint r in
                if delta < 1 || delta > i then
                  raise (B.Corrupt (r.B.pos, "parent reference out of range"));
                match vertices.(i - delta) with
                | Some parent -> Cag.Builder.add_edge kind ~parent ~child:v
                | None -> raise (B.Corrupt (r.B.pos, "parent reference out of range"))
              done;
              let link_count = B.get_count r "link" in
              links.(i) <-
                List.init link_count (fun _ ->
                    let h = B.get_uvarint r in
                    if h >= host_count then
                      raise (B.Corrupt (r.B.pos, "link host index out of range"));
                    let idx = B.get_uvarint r in
                    (h, idx))
            done;
            let cag = Option.get !cag in
            if flags land 1 <> 0 then Cag.Builder.finish cag;
            if flags land 2 <> 0 then Cag.Builder.mark_deformed cag;
            { cag; links })
      in
      if r.B.pos <> r.B.limit then
        Error (Printf.sprintf "corrupt at offset %d: trailing garbage in paths section" r.B.pos)
      else Ok { link_hosts; paths }
    with
    | B.Corrupt (p, msg) -> Error (Printf.sprintf "corrupt at offset %d: %s" p msg)
    | Invalid_argument msg -> Error (Printf.sprintf "corrupt at offset %d: %s" r.B.pos msg)
  end

(* ---- pattern profiles ---- *)

type component_stat = { comp : Latency.component; share : float; mean_s : float }

type profile = {
  name : string;
  signature : string;
  count : int;
  cag_ids : int list;
  mean_total_s : float;
  components : component_stat list;
}

let shares profile = List.map (fun c -> (c.comp, c.share)) profile.components

let profiles_of_cags cags =
  List.map
    (fun (p : Pattern.t) ->
      let cag_ids = List.map (fun (c : Cag.t) -> c.Cag.cag_id) p.Pattern.cags in
      let finished = List.filter Cag.is_finished p.Pattern.cags in
      let mean_total_s, components =
        match finished with
        | [] -> (0.0, [])
        | _ ->
            let agg = Aggregate.of_pattern p in
            let latencies = Aggregate.component_latencies agg in
            let components =
              List.map
                (fun (comp, share) ->
                  let mean_s =
                    match
                      List.find_opt (fun (c, _) -> Latency.equal_component c comp) latencies
                    with
                    | Some (_, m) -> m
                    | None -> 0.0
                  in
                  { comp; share; mean_s })
                (Aggregate.component_percentages agg)
            in
            (agg.Aggregate.mean_total_s, components)
      in
      {
        name = p.Pattern.name;
        signature = p.Pattern.signature;
        count = Pattern.count p;
        cag_ids;
        mean_total_s;
        components;
      })
    (Pattern.classify cags)

let profile_to_json p =
  Json.Obj
    [
      ("name", Json.String p.name);
      ("signature", Json.String p.signature);
      ("count", Json.Int p.count);
      ("cag_ids", Json.List (List.map (fun i -> Json.Int i) p.cag_ids));
      ("mean_total_s", Json.Float p.mean_total_s);
      ( "components",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("src", Json.String c.comp.Latency.src);
                   ("dst", Json.String c.comp.Latency.dst);
                   ("share", Json.Float c.share);
                   ("mean_s", Json.Float c.mean_s);
                 ])
             p.components) );
    ]

let profiles_to_json profiles = Json.List (List.map profile_to_json profiles)

let ( let* ) = Result.bind

let number = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let float_field j name =
  match Json.member name j with
  | Some v -> Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (number v)
  | None -> Error (Printf.sprintf "missing field %S" name)

let string_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let component_of_json j =
  let* src = string_field j "src" in
  let* dst = string_field j "dst" in
  let* share = float_field j "share" in
  let* mean_s = float_field j "mean_s" in
  Ok { comp = { Latency.src; dst }; share; mean_s }

let profile_of_json j =
  let* name = string_field j "name" in
  let* signature = string_field j "signature" in
  let* count =
    match Json.member "count" j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error "missing int field \"count\""
  in
  let* cag_ids =
    match Json.member "cag_ids" j with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with Json.Int i -> Ok (i :: acc) | _ -> Error "non-int cag id")
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "missing list field \"cag_ids\""
  in
  let* mean_total_s = float_field j "mean_total_s" in
  let* components =
    match Json.member "components" j with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* c = component_of_json item in
            Ok (c :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "missing list field \"components\""
  in
  Ok { name; signature; count; cag_ids; mean_total_s; components }

let profiles_of_json = function
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* p = profile_of_json item in
          Ok (p :: acc))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "patterns section is not a list"
