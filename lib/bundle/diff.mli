(** Bundle diff: compare two recordings — pattern-mix drift plus
    per-pattern latency-share deltas (§5.4) naming culprit subjects.

    Bundle A is the baseline, bundle B the observed run. The culprit is
    the top suspect of the most frequent pattern seen by both runs — the
    same default selection the offline [diagnose] command makes, so
    [bundle diff control.ptz fault.ptz] and [diagnose] agree on the
    blamed subject. *)

type mix_delta = {
  name : string;
  count_a : int;
  count_b : int;
  freq_a : float;  (** Fraction of A's paths, [0, 1]. *)
  freq_b : float;  (** Fraction of B's paths, [0, 1]. *)
}

type pattern_report = {
  p_name : string;
  p_count_a : int;
  p_count_b : int;
  report : Core.Analysis.report;  (** A as baseline, B as observed. *)
}

type t = {
  bundle_a : string;
  bundle_b : string;
  total_a : int;
  total_b : int;
  mix : mix_delta list;  (** Sorted by |frequency shift|, largest first. *)
  reports : pattern_report list;  (** Shared patterns, B's classify order. *)
  culprit : Core.Analysis.suspect option;
}

val diff : Reader.t -> Reader.t -> (t, string) result
val pp : Format.formatter -> t -> unit
val to_json : t -> Core.Json.t
