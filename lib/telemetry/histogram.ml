let lo_decade = -9.0 (* buckets span 1e-9 .. 1e9 *)
let decades = 18

(* All mutable state sits behind [lock] so histograms can be observed
   from several domains at once (the sharded correlator reports every
   epoch into the same registry) without losing updates. Observations
   are a handful of array/field writes, so one uncontended mutex per
   histogram is cheap next to the work being measured. *)
type t = {
  lock : Mutex.t;
  per_decade : int;
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(buckets_per_decade = 16) () =
  if buckets_per_decade <= 0 then
    invalid_arg "Histogram.create: buckets_per_decade must be positive";
  {
    lock = Mutex.create ();
    per_decade = buckets_per_decade;
    counts = Array.make (decades * buckets_per_decade) 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let index t v =
  if v <= 0.0 || not (Float.is_finite v) then
    if v > 0.0 then Array.length t.counts - 1 (* +inf *) else 0
  else
    let i =
      int_of_float (Float.floor ((Float.log10 v -. lo_decade) *. float_of_int t.per_decade))
    in
    max 0 (min (Array.length t.counts - 1) i)

let observe t v =
  if not (Float.is_nan v) then
    locked t (fun () ->
        t.counts.(index t v) <- t.counts.(index t v) + 1;
        t.count <- t.count + 1;
        t.sum <- t.sum +. v;
        if v < t.min_v then t.min_v <- v;
        if v > t.max_v then t.max_v <- v)

let count t = locked t (fun () -> t.count)
let sum t = locked t (fun () -> t.sum)

let mean t =
  locked t (fun () -> if t.count = 0 then 0.0 else t.sum /. float_of_int t.count)

let min_value t = locked t (fun () -> if t.count = 0 then 0.0 else t.min_v)
let max_value t = locked t (fun () -> if t.count = 0 then 0.0 else t.max_v)

let upper_bound t i = Float.pow 10.0 (lo_decade +. (float_of_int (i + 1) /. float_of_int t.per_decade))

let quantile t q =
  locked t (fun () ->
      if t.count = 0 then 0.0
      else begin
        let target = q *. float_of_int t.count in
        let acc = ref 0 and i = ref 0 and found = ref (Array.length t.counts - 1) in
        (try
           while !i < Array.length t.counts do
             acc := !acc + t.counts.(!i);
             if float_of_int !acc >= target && !acc > 0 then begin
               found := !i;
               raise Exit
             end;
             incr i
           done
         with Exit -> ());
        Float.max t.min_v (Float.min t.max_v (upper_bound t !found))
      end)

let clear t =
  locked t (fun () ->
      Array.fill t.counts 0 (Array.length t.counts) 0;
      t.count <- 0;
      t.sum <- 0.0;
      t.min_v <- infinity;
      t.max_v <- neg_infinity)

type bucket = { upper : float; cumulative : int }

let buckets t =
  locked t (fun () ->
      let acc = ref 0 in
      let out = ref [] in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            acc := !acc + n;
            out := { upper = upper_bound t i; cumulative = !acc } :: !out
          end)
        t.counts;
      List.rev !out)

let merge_into ~dst src =
  if dst.per_decade <> src.per_decade then
    invalid_arg "Histogram.merge_into: differing buckets_per_decade";
  (* Snapshot the source first so the two locks are never held together
     (concurrent merges in opposite directions would deadlock). *)
  let counts, count, sum, min_v, max_v =
    locked src (fun () ->
        (Array.copy src.counts, src.count, src.sum, src.min_v, src.max_v))
  in
  locked dst (fun () ->
      Array.iteri (fun i n -> dst.counts.(i) <- dst.counts.(i) + n) counts;
      dst.count <- dst.count + count;
      dst.sum <- dst.sum +. sum;
      if min_v < dst.min_v then dst.min_v <- min_v;
      if max_v > dst.max_v then dst.max_v <- max_v)
