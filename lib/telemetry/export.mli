(** Snapshot serialisers: Prometheus text exposition format and JSON.

    Both take the {!Registry.snapshot} family list, so one snapshot can be
    written in every format without re-reading live metrics. *)

val to_prometheus : Registry.family list -> string
(** Text exposition format (version 0.0.4): one [# HELP]/[# TYPE] header
    per family, histograms as cumulative [_bucket{le=...}] series plus
    [_sum]/[_count], label values escaped. Ends with a newline. *)

val to_json : Registry.family list -> Json.t
(** An object keyed by family name:
    [{"name": {"help": ..., "type": "counter"|"gauge"|"histogram",
       "samples": [{"labels": {...}, ...value fields...}]}}].
    Counter samples carry ["value"] as an integer; gauges as a float;
    histograms carry count/sum/min/max/p50/p90/p99 and a bucket list. *)

val to_json_string : ?indent:bool -> Registry.family list -> string
(** [Json.to_string] of {!to_json}; indented by default. *)

val of_json : Json.t -> (Registry.family list, string) result
(** Parse {!to_json} output back into a family list — how a telemetry
    snapshot embedded in a trace bundle is restored on re-read. Inverse
    of {!to_json} up to float formatting. *)
