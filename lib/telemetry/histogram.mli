(** Log-bucketed latency/size histograms.

    Observations land in exponentially-spaced buckets ([buckets_per_decade]
    per factor of ten, default 16, ~15% relative width), so an observe is a
    [log10], an array index and an increment — cheap enough for hot paths
    like per-candidate window-occupancy sampling. Count, sum, exact min and
    max are tracked alongside, so [mean] and [max_value] are exact while
    quantiles are bucket-resolution approximations (always within one
    bucket's relative error, and clamped to the exact observed range).

    Histograms are domain-safe: every operation (including {!merge_into}
    and the snapshot readers) is serialised on an internal per-histogram
    mutex, so concurrent observers from several domains never lose
    updates. *)

type t

val create : ?buckets_per_decade:int -> unit -> t
(** Covers 1e-9 .. 1e9 (under/overflows clamp to the edge buckets).
    @raise Invalid_argument if [buckets_per_decade] is not positive. *)

val observe : t -> float -> unit
(** NaN is ignored; zero and negative values count into the lowest bucket
    (they preserve [count]/[sum]/[min] exactly). *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [sum / count]; 0 when empty. *)

val min_value : t -> float
(** Exact smallest observation; 0 when empty. *)

val max_value : t -> float
(** Exact largest observation; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the upper bound of the first bucket
    whose cumulative count reaches [q * count], clamped to
    [[min_value, max_value]]. 0 when empty. *)

val clear : t -> unit

type bucket = { upper : float; cumulative : int }
(** Prometheus-style cumulative bucket: observations <= [upper]. *)

val buckets : t -> bucket list
(** Non-empty buckets in increasing [upper] order, cumulative counts; the
    implicit final [+Inf] bucket equals [count]. Empty list when empty. *)

val merge_into : dst:t -> t -> unit
(** Fold [t]'s buckets and exact stats into [dst].
    @raise Invalid_argument on differing [buckets_per_decade]. *)
