type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = false) json =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (float_repr f)
        else Buffer.add_string buf "null"
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            Buffer.add_string buf (escape_string key);
            Buffer.add_char buf ':';
            if indent then Buffer.add_char buf ' ';
            emit (depth + 1) value)
          fields;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, found %c" c got)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code ->
                  pos := !pos + 4;
                  add_utf8 buf code
              | None -> fail "bad \\u escape")
          | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
          | None -> fail "unterminated escape");
          loop ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            (key, parse_value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
