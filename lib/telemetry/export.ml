(* Prometheus label values escape backslash, double-quote and newline. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_pairs labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)

let labels_str labels = match labels with [] -> "" | l -> "{" ^ label_pairs l ^ "}"

(* [le] joins the sample's own labels inside one brace pair. *)
let labels_with_le labels le =
  let le_pair = Printf.sprintf "le=\"%s\"" le in
  match labels with
  | [] -> "{" ^ le_pair ^ "}"
  | l -> "{" ^ label_pairs l ^ "," ^ le_pair ^ "}"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let prom_kind (f : Registry.family) =
  match f.samples with
  | { value = Registry.Counter _; _ } :: _ -> "counter"
  | { value = Registry.Gauge _; _ } :: _ -> "gauge"
  | { value = Registry.Hist _; _ } :: _ -> "histogram"
  | [] -> "untyped"

let to_prometheus families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : Registry.family) ->
      if f.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.name f.help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name (prom_kind f));
      List.iter
        (fun (s : Registry.sample) ->
          match s.value with
          | Registry.Counter c ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" f.name (labels_str s.labels) c)
          | Registry.Gauge g ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" f.name (labels_str s.labels) (float_str g))
          | Registry.Hist h ->
              List.iter
                (fun (b : Histogram.bucket) ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" f.name
                       (labels_with_le s.labels (float_str b.upper))
                       b.cumulative))
                h.buckets;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" f.name
                   (labels_with_le s.labels "+Inf") h.count);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" f.name (labels_str s.labels) (float_str h.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" f.name (labels_str s.labels) h.count))
        f.samples)
    families;
  Buffer.contents buf

let to_json families =
  Json.Obj
    (List.map
       (fun (f : Registry.family) ->
         let sample_json (s : Registry.sample) =
           let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.labels) in
           match s.value with
           | Registry.Counter c -> Json.Obj [ ("labels", labels); ("value", Json.Int c) ]
           | Registry.Gauge g -> Json.Obj [ ("labels", labels); ("value", Json.Float g) ]
           | Registry.Hist h ->
               Json.Obj
                 [
                   ("labels", labels);
                   ("count", Json.Int h.count);
                   ("sum", Json.Float h.sum);
                   ("min", Json.Float h.min_v);
                   ("max", Json.Float h.max_v);
                   ("p50", Json.Float h.p50);
                   ("p90", Json.Float h.p90);
                   ("p99", Json.Float h.p99);
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (b : Histogram.bucket) ->
                            Json.Obj
                              [
                                ("le", Json.Float b.upper);
                                ("cumulative", Json.Int b.cumulative);
                              ])
                          h.buckets) );
                 ]
         in
         ( f.name,
           Json.Obj
             [
               ("help", Json.String f.help);
               ("type", Json.String (prom_kind f));
               ("samples", Json.List (List.map sample_json f.samples));
             ] ))
       families)

let to_json_string ?(indent = true) families = Json.to_string ~indent (to_json families)
