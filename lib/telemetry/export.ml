(* Prometheus label values escape backslash, double-quote and newline. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_pairs labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)

let labels_str labels = match labels with [] -> "" | l -> "{" ^ label_pairs l ^ "}"

(* [le] joins the sample's own labels inside one brace pair. *)
let labels_with_le labels le =
  let le_pair = Printf.sprintf "le=\"%s\"" le in
  match labels with
  | [] -> "{" ^ le_pair ^ "}"
  | l -> "{" ^ label_pairs l ^ "," ^ le_pair ^ "}"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let prom_kind (f : Registry.family) =
  match f.samples with
  | { value = Registry.Counter _; _ } :: _ -> "counter"
  | { value = Registry.Gauge _; _ } :: _ -> "gauge"
  | { value = Registry.Hist _; _ } :: _ -> "histogram"
  | [] -> "untyped"

let to_prometheus families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : Registry.family) ->
      if f.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.name f.help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name (prom_kind f));
      List.iter
        (fun (s : Registry.sample) ->
          match s.value with
          | Registry.Counter c ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" f.name (labels_str s.labels) c)
          | Registry.Gauge g ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" f.name (labels_str s.labels) (float_str g))
          | Registry.Hist h ->
              List.iter
                (fun (b : Histogram.bucket) ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" f.name
                       (labels_with_le s.labels (float_str b.upper))
                       b.cumulative))
                h.buckets;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" f.name
                   (labels_with_le s.labels "+Inf") h.count);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" f.name (labels_str s.labels) (float_str h.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" f.name (labels_str s.labels) h.count))
        f.samples)
    families;
  Buffer.contents buf

let to_json families =
  Json.Obj
    (List.map
       (fun (f : Registry.family) ->
         let sample_json (s : Registry.sample) =
           let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.labels) in
           match s.value with
           | Registry.Counter c -> Json.Obj [ ("labels", labels); ("value", Json.Int c) ]
           | Registry.Gauge g -> Json.Obj [ ("labels", labels); ("value", Json.Float g) ]
           | Registry.Hist h ->
               Json.Obj
                 [
                   ("labels", labels);
                   ("count", Json.Int h.count);
                   ("sum", Json.Float h.sum);
                   ("min", Json.Float h.min_v);
                   ("max", Json.Float h.max_v);
                   ("p50", Json.Float h.p50);
                   ("p90", Json.Float h.p90);
                   ("p99", Json.Float h.p99);
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (b : Histogram.bucket) ->
                            Json.Obj
                              [
                                ("le", Json.Float b.upper);
                                ("cumulative", Json.Int b.cumulative);
                              ])
                          h.buckets) );
                 ]
         in
         ( f.name,
           Json.Obj
             [
               ("help", Json.String f.help);
               ("type", Json.String (prom_kind f));
               ("samples", Json.List (List.map sample_json f.samples));
             ] ))
       families)

let to_json_string ?(indent = true) families = Json.to_string ~indent (to_json families)

(* ---- snapshot restore (bundle embed/re-read) ---- *)

let ( let* ) = Result.bind

let number = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let float_field j name =
  match Json.member name j with
  | Some v -> Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (number v)
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field j name =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

let labels_of_json = function
  | Some (Json.Obj pairs) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Json.String s -> Ok ((k, s) :: acc)
          | _ -> Error (Printf.sprintf "label %S is not a string" k))
        (Ok []) pairs
      |> Result.map List.rev
  | Some _ -> Error "labels is not an object"
  | None -> Ok []

let bucket_of_json j =
  let* upper = float_field j "le" in
  let* cumulative = int_field j "cumulative" in
  Ok { Histogram.upper; cumulative }

let sample_of_json kind j =
  let* labels = labels_of_json (Json.member "labels" j) in
  let* value =
    match kind with
    | "counter" ->
        let* v = int_field j "value" in
        Ok (Registry.Counter v)
    | "gauge" ->
        let* v = float_field j "value" in
        Ok (Registry.Gauge v)
    | "histogram" ->
        let* count = int_field j "count" in
        let* sum = float_field j "sum" in
        let* min_v = float_field j "min" in
        let* max_v = float_field j "max" in
        let* p50 = float_field j "p50" in
        let* p90 = float_field j "p90" in
        let* p99 = float_field j "p99" in
        let* buckets =
          match Json.member "buckets" j with
          | Some (Json.List items) ->
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let* b = bucket_of_json item in
                  Ok (b :: acc))
                (Ok []) items
              |> Result.map List.rev
          | _ -> Error "missing bucket list"
        in
        Ok (Registry.Hist { count; sum; min_v; max_v; p50; p90; p99; buckets })
    | other -> Error (Printf.sprintf "unknown family type %S" other)
  in
  Ok { Registry.labels; value }

let family_of_json name j =
  let* help =
    match Json.member "help" j with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error "help is not a string"
    | None -> Ok ""
  in
  let* kind =
    match Json.member "type" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "missing family type"
  in
  let* samples =
    match Json.member "samples" j with
    | Some (Json.List items) ->
        if String.equal kind "untyped" then Ok []
        else
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* s = sample_of_json kind item in
              Ok (s :: acc))
            (Ok []) items
          |> Result.map List.rev
    | _ -> Error "missing sample list"
  in
  Ok { Registry.name; help; samples }

let of_json = function
  | Json.Obj pairs ->
      List.fold_left
        (fun acc (name, j) ->
          let* acc = acc in
          let* f =
            Result.map_error
              (fun e -> Printf.sprintf "telemetry family %S: %s" name e)
              (family_of_json name j)
          in
          Ok (f :: acc))
        (Ok []) pairs
      |> Result.map List.rev
  | _ -> Error "telemetry snapshot is not an object"
