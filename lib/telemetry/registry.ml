(* Counters and gauges are single atomics and histograms carry their own
   mutex, so metric *updates* are domain-safe lock-free (or one short
   critical section). The registry itself — the family table and each
   family's entry list — is guarded by [lock], taken only on handle
   resolution and snapshots, never on the hot update path. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type metric =
  | Counter_m of counter
  | Gauge_m of gauge
  | Hist_m of Histogram.t

type entry = { labels : (string * string) list; metric : metric }

type meta = { help : string; mutable entries : entry list (* newest first *) }

type t = { lock : Mutex.t; families : (string, meta) Hashtbl.t }

let create () = { lock = Mutex.create (); families = Hashtbl.create 64 }
let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t = locked t (fun () -> Hashtbl.reset t.families)

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Hist_m _ -> "histogram"

(* Find-or-create the entry for (name, labels); [make] builds the metric,
   [cast] projects an existing one (raising on a kind clash). Runs under
   the registry lock so two domains resolving the same handle always get
   the same metric. *)
let resolve t ~help ~labels name ~make ~cast =
  let labels = normalize_labels labels in
  locked t (fun () ->
      let meta =
        match Hashtbl.find_opt t.families name with
        | Some m -> m
        | None ->
            let m = { help; entries = [] } in
            Hashtbl.replace t.families name m;
            m
      in
      match List.find_opt (fun e -> e.labels = labels) meta.entries with
      | Some e -> cast name e.metric
      | None ->
          let metric = make () in
          (* Kind consistency across label sets of one family. *)
          (match meta.entries with
          | { metric = existing; _ } :: _ when kind_name existing <> kind_name metric ->
              invalid_arg
                (Printf.sprintf "Telemetry.Registry: %s is a %s, not a %s" name
                   (kind_name existing) (kind_name metric))
          | _ -> ());
          meta.entries <- { labels; metric } :: meta.entries;
          (match cast name metric with v -> v))

let clash name want got =
  invalid_arg (Printf.sprintf "Telemetry.Registry: %s is a %s, not a %s" name got want)

let counter t ?(help = "") ?(labels = []) name =
  resolve t ~help ~labels name
    ~make:(fun () -> Counter_m (Atomic.make 0))
    ~cast:(fun name -> function
      | Counter_m c -> c
      | m -> clash name "counter" (kind_name m))

let incr c = Atomic.incr c

let add c n =
  if n < 0 then invalid_arg "Telemetry.Registry.add: counters only go up";
  ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c

let gauge t ?(help = "") ?(labels = []) name =
  resolve t ~help ~labels name
    ~make:(fun () -> Gauge_m (Atomic.make 0.0))
    ~cast:(fun name -> function
      | Gauge_m g -> g
      | m -> clash name "gauge" (kind_name m))

let set g v = Atomic.set g v

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let gauge_value g = Atomic.get g

let histogram t ?(help = "") ?(labels = []) ?buckets_per_decade name =
  resolve t ~help ~labels name
    ~make:(fun () -> Hist_m (Histogram.create ?buckets_per_decade ()))
    ~cast:(fun name -> function
      | Hist_m h -> h
      | m -> clash name "histogram" (kind_name m))

let observe = Histogram.observe

type span = { hist : Histogram.t; started : float }

let start_span t ?labels name =
  { hist = histogram t ?labels name; started = Unix.gettimeofday () }

let stop_span span =
  let elapsed = Unix.gettimeofday () -. span.started in
  Histogram.observe span.hist elapsed;
  elapsed

let time t ?labels name f =
  let span = start_span t ?labels name in
  Fun.protect ~finally:(fun () -> ignore (stop_span span)) f

type value =
  | Counter of int
  | Gauge of float
  | Hist of {
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
      p50 : float;
      p90 : float;
      p99 : float;
      buckets : Histogram.bucket list;
    }

type sample = { labels : (string * string) list; value : value }
type family = { name : string; help : string; samples : sample list }

let value_of_metric = function
  | Counter_m c -> Counter (Atomic.get c)
  | Gauge_m g -> Gauge (Atomic.get g)
  | Hist_m h ->
      Hist
        {
          count = Histogram.count h;
          sum = Histogram.sum h;
          min_v = Histogram.min_value h;
          max_v = Histogram.max_value h;
          p50 = Histogram.quantile h 0.50;
          p90 = Histogram.quantile h 0.90;
          p99 = Histogram.quantile h 0.99;
          buckets = Histogram.buckets h;
        }

let snapshot t =
  (* Collect the structure under the registry lock, read the metric
     values outside it (histogram readers take their own locks). *)
  let entries =
    locked t (fun () ->
        Hashtbl.fold
          (fun name (meta : meta) acc -> (name, meta.help, meta.entries) :: acc)
          t.families [])
  in
  List.map
    (fun (name, help, entries) ->
      let samples =
        List.map
          (fun (e : entry) -> { labels = e.labels; value = value_of_metric e.metric })
          entries
        |> List.sort (fun a b -> compare a.labels b.labels)
      in
      { name; help; samples })
    entries
  |> List.sort (fun a b -> String.compare a.name b.name)

let find_sample families ?(labels = []) name =
  let labels = normalize_labels labels in
  match List.find_opt (fun f -> String.equal f.name name) families with
  | None -> None
  | Some f ->
      List.find_opt (fun s -> s.labels = labels) f.samples |> Option.map (fun s -> s.value)
