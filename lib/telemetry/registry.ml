type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Counter_m of counter
  | Gauge_m of gauge
  | Hist_m of Histogram.t

type entry = { labels : (string * string) list; metric : metric }

type meta = { help : string; mutable entries : entry list (* newest first *) }

type t = { families : (string, meta) Hashtbl.t }

let create () = { families = Hashtbl.create 64 }
let default = create ()
let reset t = Hashtbl.reset t.families

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Hist_m _ -> "histogram"

(* Find-or-create the entry for (name, labels); [make] builds the metric,
   [cast] projects an existing one (raising on a kind clash). *)
let resolve t ~help ~labels name ~make ~cast =
  let labels = normalize_labels labels in
  let meta =
    match Hashtbl.find_opt t.families name with
    | Some m -> m
    | None ->
        let m = { help; entries = [] } in
        Hashtbl.replace t.families name m;
        m
  in
  match List.find_opt (fun e -> e.labels = labels) meta.entries with
  | Some e -> cast name e.metric
  | None ->
      let metric = make () in
      (* Kind consistency across label sets of one family. *)
      (match meta.entries with
      | { metric = existing; _ } :: _ when kind_name existing <> kind_name metric ->
          invalid_arg
            (Printf.sprintf "Telemetry.Registry: %s is a %s, not a %s" name
               (kind_name existing) (kind_name metric))
      | _ -> ());
      meta.entries <- { labels; metric } :: meta.entries;
      (match cast name metric with v -> v)

let clash name want got =
  invalid_arg (Printf.sprintf "Telemetry.Registry: %s is a %s, not a %s" name got want)

let counter t ?(help = "") ?(labels = []) name =
  resolve t ~help ~labels name
    ~make:(fun () -> Counter_m { c = 0 })
    ~cast:(fun name -> function
      | Counter_m c -> c
      | m -> clash name "counter" (kind_name m))

let incr c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Telemetry.Registry.add: counters only go up";
  c.c <- c.c + n

let counter_value c = c.c

let gauge t ?(help = "") ?(labels = []) name =
  resolve t ~help ~labels name
    ~make:(fun () -> Gauge_m { g = 0.0 })
    ~cast:(fun name -> function
      | Gauge_m g -> g
      | m -> clash name "gauge" (kind_name m))

let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v
let gauge_value g = g.g

let histogram t ?(help = "") ?(labels = []) ?buckets_per_decade name =
  resolve t ~help ~labels name
    ~make:(fun () -> Hist_m (Histogram.create ?buckets_per_decade ()))
    ~cast:(fun name -> function
      | Hist_m h -> h
      | m -> clash name "histogram" (kind_name m))

let observe = Histogram.observe

type span = { hist : Histogram.t; started : float }

let start_span t ?labels name =
  { hist = histogram t ?labels name; started = Unix.gettimeofday () }

let stop_span span =
  let elapsed = Unix.gettimeofday () -. span.started in
  Histogram.observe span.hist elapsed;
  elapsed

let time t ?labels name f =
  let span = start_span t ?labels name in
  Fun.protect ~finally:(fun () -> ignore (stop_span span)) f

type value =
  | Counter of int
  | Gauge of float
  | Hist of {
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
      p50 : float;
      p90 : float;
      p99 : float;
      buckets : Histogram.bucket list;
    }

type sample = { labels : (string * string) list; value : value }
type family = { name : string; help : string; samples : sample list }

let value_of_metric = function
  | Counter_m c -> Counter c.c
  | Gauge_m g -> Gauge g.g
  | Hist_m h ->
      Hist
        {
          count = Histogram.count h;
          sum = Histogram.sum h;
          min_v = Histogram.min_value h;
          max_v = Histogram.max_value h;
          p50 = Histogram.quantile h 0.50;
          p90 = Histogram.quantile h 0.90;
          p99 = Histogram.quantile h 0.99;
          buckets = Histogram.buckets h;
        }

let snapshot t =
  Hashtbl.fold
    (fun name meta acc ->
      let samples =
        List.map
          (fun (e : entry) -> { labels = e.labels; value = value_of_metric e.metric })
          meta.entries
        |> List.sort (fun a b -> compare a.labels b.labels)
      in
      { name; help = meta.help; samples } :: acc)
    t.families []
  |> List.sort (fun a b -> String.compare a.name b.name)

let find_sample families ?(labels = []) name =
  let labels = normalize_labels labels in
  match List.find_opt (fun f -> String.equal f.name name) families with
  | None -> None
  | Some f ->
      List.find_opt (fun s -> s.labels = labels) f.samples |> Option.map (fun s -> s.value)
