(** The process-wide metric registry.

    Metrics are identified by name plus a (possibly empty) sorted label
    set, in the Prometheus data model: monotonic {e counters}, last-write
    {e gauges}, and log-bucketed {e histograms} ({!Histogram}). Handles
    are resolved once — typically at component creation — and updating
    through a handle is one or two mutable-field writes, so hot paths
    (per-event, per-candidate) can afford it.

    [default] is the registry every pipeline component reports to unless
    handed another one; tests pass fresh registries to keep runs isolated.
    Registering the same name with two different metric kinds raises
    [Invalid_argument]; re-registering the same kind returns the existing
    handle (so components created repeatedly accumulate, which is what a
    whole-process self-profile wants).

    The registry is domain-safe: handle resolution and snapshots are
    serialised on a per-registry mutex, counter/gauge updates are single
    atomic operations, and histograms serialise on their own lock — so
    [pt_*] totals stay exact when several domains (the sharded
    correlator's workers) report into one registry concurrently. *)

type t

val create : unit -> t

val default : t
(** The process-wide registry. *)

val reset : t -> unit
(** Drop every registered metric (for test isolation). *)

type counter
type gauge

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters only go up). *)

val counter_value : counter -> int

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the high-water mark: [set] only if the value exceeds the current. *)

val gauge_value : gauge -> float

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets_per_decade:int -> string ->
  Histogram.t
val observe : Histogram.t -> float -> unit
(** Alias for {!Histogram.observe}, for call-site symmetry. *)

(** {1 Timer spans} *)

type span
(** A started named timer; stopping it observes the elapsed wall-clock
    seconds into the histogram it was started from. *)

val start_span : t -> ?labels:(string * string) list -> string -> span
val stop_span : span -> float
(** Returns the elapsed seconds (also recorded). Stopping twice records
    twice. *)

val time : t -> ?labels:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [time reg name f] runs [f] inside a span — the elapsed seconds are
    recorded even if [f] raises. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Hist of {
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
      p50 : float;
      p90 : float;
      p99 : float;
      buckets : Histogram.bucket list;
    }

type sample = { labels : (string * string) list; value : value }
type family = { name : string; help : string; samples : sample list }

val snapshot : t -> family list
(** Families sorted by name; samples sorted by label set. Histogram fields
    are computed at snapshot time. *)

val find_sample : family list -> ?labels:(string * string) list -> string -> value option
(** Convenience lookup for tests and reports (labels default to []). *)
