(** A minimal JSON emitter and parser (no external dependency).

    Construction, compact or indented serialisation with correct string
    escaping, and a small recursive-descent parser so telemetry snapshots
    (and any other emitted document) can be read back and asserted on.
    This module used to live in [lib/core]; {!Core.Json} re-exports it so
    existing call sites are unchanged. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with 2-space
    indentation. Floats are emitted with enough digits to round-trip;
    non-finite floats become [null]. *)

val escape_string : string -> string
(** The quoted, escaped JSON form of a string (exposed for tests). *)

val of_string : string -> (t, string) result
(** Parse one JSON document (trailing whitespace allowed). Numbers without
    [.], [e] or [E] parse as [Int]; others as [Float]. [\uXXXX] escapes
    outside ASCII are decoded as UTF-8. Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj ...)] is the first binding of [key], if any; [None]
    on non-objects. *)
