(** Network addressing: IPv4-style addresses, endpoints and flows.

    An address is stored as an int for cheap hashing; rendering follows
    dotted-quad notation so traces look like the paper's
    ["sender_ip:port-receiver_ip:port"] records. A [flow] is the directed
    4-tuple identifying one direction of a TCP connection — precisely the
    message-identifier key the Correlator's [mmap] indexes on. *)

type ip
(** An IPv4-style address. *)

val ip_of_string : string -> ip
(** [ip_of_string "10.0.0.1"] parses dotted-quad notation.
    @raise Invalid_argument on malformed input. *)

val ip_to_string : ip -> string

val ip_to_int : ip -> int
(** The address as a 32-bit integer (for compact encodings). *)

val ip_of_int : int -> ip
(** Inverse of {!ip_to_int}.
    @raise Invalid_argument outside [0, 2^32). *)

val ip_equal : ip -> ip -> bool
val ip_compare : ip -> ip -> int
val pp_ip : Format.formatter -> ip -> unit

type endpoint = { ip : ip; port : int }

val endpoint : ip -> int -> endpoint
val endpoint_equal : endpoint -> endpoint -> bool
val endpoint_compare : endpoint -> endpoint -> int
val pp_endpoint : Format.formatter -> endpoint -> unit
(** Rendered ["10.0.0.1:80"]. *)

type flow = { src : endpoint; dst : endpoint }
(** One direction of a connection: bytes travelling [src] -> [dst]. *)

val flow : src:endpoint -> dst:endpoint -> flow

val reverse : flow -> flow
(** The opposite direction of the same connection. *)

val flow_equal : flow -> flow -> bool
val flow_compare : flow -> flow -> int
val flow_hash : flow -> int
val pp_flow : Format.formatter -> flow -> unit
(** Rendered ["10.0.0.1:3456-10.0.0.2:80"], matching TCP_TRACE output. *)

module Flow_table : Hashtbl.S with type key = flow
(** Hash tables keyed by flow; the backing store for [mmap]-style indexes. *)
