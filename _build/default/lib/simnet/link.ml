type t = {
  engine : Engine.t;
  mutable bandwidth_bps : float;
  propagation : Sim_time.span;
  mutable free_at : Sim_time.t;
  mutable bytes : int;
}

let create ~engine ~bandwidth_bps ~propagation () =
  assert (bandwidth_bps > 0.0);
  { engine; bandwidth_bps; propagation; free_at = Engine.now engine; bytes = 0 }

let transmit t ~size k =
  assert (size >= 0);
  let now = Engine.now t.engine in
  let start = Sim_time.max now t.free_at in
  let tx_ns = Float.ceil (float_of_int (size * 8) /. t.bandwidth_bps *. 1e9) in
  let tx = Sim_time.ns (int_of_float tx_ns) in
  t.free_at <- Sim_time.add start tx;
  t.bytes <- t.bytes + size;
  let deliver_at = Sim_time.add t.free_at t.propagation in
  ignore (Engine.schedule_at t.engine ~time:deliver_at k)

let set_bandwidth_bps t bps =
  assert (bps > 0.0);
  t.bandwidth_bps <- bps

let bandwidth_bps t = t.bandwidth_bps
let bytes_sent t = t.bytes
