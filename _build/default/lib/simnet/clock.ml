type t = { skew : Sim_time.span; drift_ppm : float }

let create ?(skew = Sim_time.span_zero) ?(drift_ppm = 0.0) () = { skew; drift_ppm }
let perfect = create ()

let local_of_global t g =
  let g_ns = Sim_time.to_ns g in
  let drift = int_of_float (Float.round (t.drift_ppm *. float_of_int g_ns /. 1e6)) in
  Sim_time.of_ns (g_ns + Sim_time.span_ns t.skew + drift)

let global_of_local t l =
  let l_ns = Sim_time.to_ns l in
  let base = float_of_int (l_ns - Sim_time.span_ns t.skew) in
  Sim_time.of_ns (int_of_float (Float.round (base /. (1.0 +. (t.drift_ppm /. 1e6)))))

let skew t = t.skew
let drift_ppm t = t.drift_ppm
