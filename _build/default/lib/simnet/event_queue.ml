type 'a cell = {
  time : Sim_time.t;
  seq : int;
  value : 'a;
  mutable cancelled : bool;
}

type handle = H : 'a cell -> handle

type 'a t = {
  mutable heap : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = 0 }

let cell_before a b =
  match Sim_time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow q =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nheap = Array.make ncap q.heap.(0) in
  Array.blit q.heap 0 nheap 0 q.size;
  q.heap <- nheap

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && cell_before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && cell_before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time value =
  let cell = { time; seq = q.next_seq; value; cancelled = false } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 cell;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- cell;
  q.size <- q.size + 1;
  q.live <- q.live + 1;
  sift_up q (q.size - 1);
  H cell

let cancel q (H cell) =
  (* The cell stays in the heap and is skipped at pop time; the [live]
     counter is what observers see. Obj.magic-free: the handle is only valid
     for the queue that produced it, which holds cells of the right type. *)
  if not cell.cancelled then begin
    cell.cancelled <- true;
    q.live <- q.live - 1
  end

let remove_min q =
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  top

let rec pop q =
  if q.size = 0 then None
  else
    let top = remove_min q in
    if top.cancelled then pop q
    else begin
      q.live <- q.live - 1;
      (* Mark the cell dead so a later [cancel] through a stale handle is a
         no-op instead of corrupting the live count. *)
      top.cancelled <- true;
      Some (top.time, top.value)
    end

let rec peek_time q =
  if q.size = 0 then None
  else if q.heap.(0).cancelled then begin
    ignore (remove_min q);
    peek_time q
  end
  else Some q.heap.(0).time

let length q = q.live
let is_empty q = q.live = 0
