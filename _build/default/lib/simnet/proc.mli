(** Execution-entity identity: the (program, pid, tid) part of the context
    identifier that TCP_TRACE records for every syscall.

    A [t] identifies one schedulable entity — a process or a kernel thread.
    The paper's correlation algorithm keys its [cmap] on the full context
    identifier (hostname, program, pid, tid); hostname lives with the node,
    the rest lives here. *)

type t = { program : string; pid : int; tid : int }

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Rendered ["httpd[1203/1203]"]. *)
