(** Per-node wall clocks with skew and drift.

    The tracing algorithm under reproduction claims independence from clock
    synchronisation: activities are timestamped with each node's *local*
    clock, which differs from global virtual time by a constant skew plus a
    linear drift. A clock converts global instants to local timestamps and
    back, letting experiments sweep skew from 1 ms to 500 ms as in the
    paper's accuracy evaluation (§5.2). *)

type t

val create : ?skew:Sim_time.span -> ?drift_ppm:float -> unit -> t
(** [create ~skew ~drift_ppm ()] is a clock whose local reading at global
    instant [g] is [g + skew + drift_ppm * g / 1e6]. Defaults: zero skew,
    zero drift. *)

val perfect : t
(** A clock with no skew and no drift. *)

val local_of_global : t -> Sim_time.t -> Sim_time.t
(** Local timestamp a node's tracer would record at a global instant. *)

val global_of_local : t -> Sim_time.t -> Sim_time.t
(** Inverse of [local_of_global], up to nanosecond rounding. *)

val skew : t -> Sim_time.span
val drift_ppm : t -> float
