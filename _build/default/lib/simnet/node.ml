type t = {
  engine : Engine.t;
  hostname : string;
  ip : Address.ip;
  clock : Clock.t;
  cpu : Cpu.t;
  tx : Link.t;
  rx : Link.t;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable next_port : int;
}

let mbps m = m *. 1e6

let create ~engine ~hostname ~ip ~cores ?(clock = Clock.perfect) ?(switch_penalty = 0.0)
    ?(bandwidth_bps = mbps 100.) ?(latency = Sim_time.us 100) () =
  {
    engine;
    hostname;
    ip;
    clock;
    cpu = Cpu.create ~engine ~cores ~switch_penalty ();
    tx = Link.create ~engine ~bandwidth_bps ~propagation:latency ();
    rx = Link.create ~engine ~bandwidth_bps ~propagation:Sim_time.span_zero ();
    next_pid = 1000;
    next_tid = 20000;
    next_port = 32768;
  }

let hostname t = t.hostname
let ip t = t.ip
let clock t = t.clock
let cpu t = t.cpu
let engine t = t.engine
let tx t = t.tx
let rx t = t.rx

let set_nic_bandwidth_bps t bps =
  Link.set_bandwidth_bps t.tx bps;
  Link.set_bandwidth_bps t.rx bps

let local_time t = Clock.local_of_global t.clock (Engine.now t.engine)

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  tid

let fresh_port t =
  let port = t.next_port in
  t.next_port <- port + 1;
  port

let spawn t ~program =
  let pid = fresh_pid t in
  { Proc.program; pid; tid = pid }

let spawn_thread t ~of_:(proc : Proc.t) = { proc with Proc.tid = fresh_tid t }
