(** Virtual time for the discrete-event simulator.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation (instant 0). Spans (durations) share the same
    representation. 63-bit nanoseconds cover ~146 years of virtual time,
    far beyond any experiment in this repository. *)

type t = private int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = private int
(** A duration, in nanoseconds. May be negative (e.g. a clock skew). *)

val zero : t
(** The simulation origin. *)

val of_ns : int -> t
(** [of_ns n] is the instant [n] nanoseconds after the origin. *)

val to_ns : t -> int
(** [to_ns t] is [t] expressed in nanoseconds. *)

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span
(** Span constructors from integer counts of the named unit. *)

val span_of_float_s : float -> span
(** [span_of_float_s s] converts [s] seconds to a span, rounding to the
    nearest nanosecond. *)

val span_ns : span -> int
val span_to_float_s : span -> float

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff a b] is the span from [b] to [a]: [a - b]. *)

val span_add : span -> span -> span
val span_sub : span -> span -> span
val span_scale : float -> span -> span
val span_max : span -> span -> span
val span_zero : span

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val compare_span : span -> span -> int

val to_float_s : t -> float
(** [to_float_s t] is [t] in seconds, as a float. *)

val pp : Format.formatter -> t -> unit
(** Human-readable instant, e.g. ["12.034567890s"]. *)

val pp_span : Format.formatter -> span -> unit
(** Human-readable span with an adaptive unit, e.g. ["1.5ms"]. *)
