(** A multi-core CPU with processor-sharing scheduling.

    Models the paper's 2-way SMP nodes. All jobs active on a node share the
    cores equally: with [n] jobs on [c] cores each progresses at rate
    [min 1 (c/n)], optionally degraded by a context-switch penalty that
    grows with [n] (this produces the slight throughput dip past saturation
    visible in the paper's Fig. 8). Jobs are CPU work only — blocking on
    I/O or locks is modelled by simply not holding a job. *)

type t

val create : engine:Engine.t -> cores:int -> ?switch_penalty:float -> unit -> t
(** [switch_penalty] is the fractional slowdown added per extra active job:
    effective rate is divided by [1 + switch_penalty * (n - 1)]. Default 0. *)

val submit : t -> work:Sim_time.span -> (unit -> unit) -> unit
(** [submit t ~work k] adds a job needing [work] of dedicated-core time and
    calls [k] when it completes. Zero or negative work completes at the
    current instant (asynchronously, preserving event ordering). *)

val active_jobs : t -> int
(** Jobs currently sharing the cores. *)

val utilization : t -> float
(** Fraction of total core capacity used since creation, in [0, 1]. *)

val busy_core_time : t -> Sim_time.span
(** Integral of busy cores over time (core-nanoseconds consumed). *)
