(** The discrete-event simulation core.

    An engine owns the virtual clock and an event queue of callbacks. All
    simulated activity — CPU completions, packet deliveries, timers — is
    expressed as callbacks scheduled at virtual instants. Running the engine
    repeatedly pops the earliest event, advances [now] to its time and fires
    it. Everything is single-threaded and deterministic. *)

type t

type timer
(** Handle to a scheduled callback, for cancellation. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current virtual time. *)

val schedule_at : t -> time:Sim_time.t -> (unit -> unit) -> timer
(** [schedule_at t ~time f] fires [f] at [time]. Scheduling in the past is a
    programming error and raises [Invalid_argument]. *)

val schedule_after : t -> delay:Sim_time.span -> (unit -> unit) -> timer
(** [schedule_after t ~delay f] fires [f] at [now t + delay]. Negative
    delays are clamped to zero. *)

val cancel : t -> timer -> unit

val run : t -> unit
(** Run until the event queue is exhausted. *)

val run_until : t -> Sim_time.t -> unit
(** [run_until t stop] fires every event with time <= [stop], then sets the
    clock to [stop] (if it is later than the last event fired). Remaining
    events stay queued. *)

val pending : t -> int
(** Number of live queued events. *)

val events_fired : t -> int
(** Total number of events fired since creation; a cheap progress and
    complexity proxy for tests and benchmarks. *)
