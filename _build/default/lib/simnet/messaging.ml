type payload = ..

type msg = { size : int; payload : payload option }

(* Expected-size/payload side channel, keyed by (connection, direction).
   The direction is identified by the sending side: true = client-to-server. *)
type t = {
  stack : Tcp.stack;
  expected : (int * bool, (int * payload option) Queue.t) Hashtbl.t;
}

let create stack = { stack; expected = Hashtbl.create 64 }

let channel t sock ~sending =
  let c2s = if sending then Tcp.is_client_side sock else not (Tcp.is_client_side sock) in
  let key = (Tcp.conn_id sock, c2s) in
  match Hashtbl.find_opt t.expected key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.expected key q;
      q

let send_message t sock ~proc ~size ?(chunk = 8192) ?payload ~k () =
  if size <= 0 then invalid_arg "Messaging.send_message: size must be positive";
  if chunk <= 0 then invalid_arg "Messaging.send_message: chunk must be positive";
  Queue.push (size, payload) (channel t sock ~sending:true);
  let rec loop remaining =
    if remaining <= 0 then k ()
    else
      let n = min chunk remaining in
      Tcp.send t.stack sock ~proc ~size:n ~k:(fun () -> loop (remaining - n))
  in
  loop size

let recv_message t sock ~proc ?(buf = 8192) ~k () =
  if buf <= 0 then invalid_arg "Messaging.recv_message: buf must be positive";
  let q = channel t sock ~sending:false in
  let rec loop total =
    Tcp.recv t.stack sock ~proc ~max:buf ~k:(fun n ->
        if n = 0 then
          if total = 0 then k { size = 0; payload = None }
          else failwith "Messaging.recv_message: peer closed mid-message"
        else begin
          let total = total + n in
          (* Bytes have arrived, so the sender's expected size is queued. *)
          assert (not (Queue.is_empty q));
          let expected, payload = Queue.peek q in
          if total > expected then
            failwith "Messaging.recv_message: read crossed a message boundary"
          else if total = expected then begin
            ignore (Queue.pop q);
            k { size = total; payload }
          end
          else loop total
        end)
  in
  loop 0
