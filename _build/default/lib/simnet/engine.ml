type t = {
  mutable clock : Sim_time.t;
  queue : (unit -> unit) Event_queue.t;
  mutable fired : int;
}

type timer = Event_queue.handle

let create () = { clock = Sim_time.zero; queue = Event_queue.create (); fired = 0 }
let now t = t.clock

let schedule_at t ~time f =
  if Sim_time.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)" Sim_time.pp time
         Sim_time.pp t.clock);
  Event_queue.add t.queue ~time f

let schedule_after t ~delay f =
  let delay = Sim_time.span_max delay Sim_time.span_zero in
  Event_queue.add t.queue ~time:(Sim_time.add t.clock delay) f

let cancel t timer = Event_queue.cancel t.queue timer

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      f ();
      true

let run t =
  while step t do
    ()
  done

let run_until t stop =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when Sim_time.(time <= stop) -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if Sim_time.(t.clock < stop) then t.clock <- stop

let pending t = Event_queue.length t.queue
let events_fired t = t.fired
