(** A cluster node: hostname, address, local clock, CPU, and NIC.

    Mirrors the paper's testbed machines (2-way SMP, 100 Mbps Ethernet).
    The NIC is a pair of serialising links (transmit and receive) so a
    bandwidth downgrade throttles traffic in both directions, as the
    paper's EJB_Network fault does. Nodes also allocate process/thread ids
    and ephemeral ports, so context identifiers are unique per node. *)

type t

val create :
  engine:Engine.t ->
  hostname:string ->
  ip:Address.ip ->
  cores:int ->
  ?clock:Clock.t ->
  ?switch_penalty:float ->
  ?bandwidth_bps:float ->
  ?latency:Sim_time.span ->
  unit ->
  t
(** Defaults: perfect clock, no context-switch penalty, 100 Mbps NIC,
    100 us one-way latency. *)

val hostname : t -> string
val ip : t -> Address.ip
val clock : t -> Clock.t
val cpu : t -> Cpu.t
val engine : t -> Engine.t

val tx : t -> Link.t
(** Egress link (pays the one-way propagation latency). *)

val rx : t -> Link.t
(** Ingress link (serialisation only). *)

val set_nic_bandwidth_bps : t -> float -> unit
(** Degrade or restore both directions of the NIC. *)

val local_time : t -> Sim_time.t
(** The node's local clock reading at the current global instant — what a
    tracer running on this node stamps on activities. *)

val fresh_pid : t -> int
val fresh_tid : t -> int
val fresh_port : t -> int
(** Ephemeral port, starting at 32768. *)

val spawn : t -> program:string -> Proc.t
(** A new single-threaded process of [program] (tid = pid, as for Linux
    main threads). *)

val spawn_thread : t -> of_:Proc.t -> Proc.t
(** A new kernel thread inside [of_]'s process. *)
