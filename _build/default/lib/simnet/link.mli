(** A serialising network link (one direction of a NIC or switch port).

    Transmissions queue FIFO behind the link: a payload of [size] bytes
    occupies the link for [size / bandwidth] and is delivered
    [propagation] later. Bandwidth is mutable so experiments can degrade a
    NIC mid-run (the paper's EJB_Network fault drops 100 Mbps to 10 Mbps). *)

type t

val create :
  engine:Engine.t ->
  bandwidth_bps:float ->
  propagation:Sim_time.span ->
  unit ->
  t
(** [bandwidth_bps] is in bits per second. *)

val transmit : t -> size:int -> (unit -> unit) -> unit
(** [transmit t ~size k] queues [size] bytes and calls [k] at delivery
    time. Zero-size payloads still pay propagation delay. *)

val set_bandwidth_bps : t -> float -> unit
(** Takes effect for transmissions queued after the call. *)

val bandwidth_bps : t -> float

val bytes_sent : t -> int
(** Total payload bytes accepted since creation. *)
