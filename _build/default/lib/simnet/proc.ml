type t = { program : string; pid : int; tid : int }

let equal a b = String.equal a.program b.program && a.pid = b.pid && a.tid = b.tid

let compare a b =
  match String.compare a.program b.program with
  | 0 -> ( match Int.compare a.pid b.pid with 0 -> Int.compare a.tid b.tid | c -> c)
  | c -> c

let hash t = Hashtbl.hash (t.program, t.pid, t.tid)
let pp ppf t = Format.fprintf ppf "%s[%d/%d]" t.program t.pid t.tid
