(** Application-level message framing over {!Tcp}.

    Multi-tier components exchange *logical messages* (an HTTP request, a
    SQL result set) that cross the kernel boundary as several syscalls:
    the sender writes in bounded chunks and the receiver reads into a
    bounded buffer. This module provides that framing, and in doing so
    generates exactly the n-to-n SEND/RECEIVE asymmetry the paper's engine
    must merge (its Fig. 4).

    Message lengths — and an optional application payload — travel through
    a per-connection side channel: the moral equivalent of a self-framing
    protocol whose headers the application parses, kept out of the byte
    stream so payload sizes in traces match the logical sizes experiments
    configure. The tracer never sees this channel; it carries what a real
    component would read out of its own protocol (an HTTP URL, a SQL
    string), which is application knowledge, not tracing knowledge.

    The framing assumes the request/response discipline of the paper's
    target services: on a given connection direction, a new message starts
    only after the previous one has been fully consumed (no pipelining). *)

type t

type payload = ..
(** Application metadata attached to a logical message. Applications
    extend this with their own constructors. *)

type msg = { size : int; payload : payload option }

val create : Tcp.stack -> t

val send_message :
  t ->
  Tcp.socket ->
  proc:Proc.t ->
  size:int ->
  ?chunk:int ->
  ?payload:payload ->
  k:(unit -> unit) ->
  unit ->
  unit
(** [send_message t sock ~proc ~size ~chunk ~payload ~k ()] writes a
    [size]-byte logical message as consecutive sends of at most [chunk]
    bytes (default 8192) and continues with [k]. *)

val recv_message :
  t -> Tcp.socket -> proc:Proc.t -> ?buf:int -> k:(msg -> unit) -> unit -> unit
(** [recv_message t sock ~proc ~buf ~k ()] reads one whole logical message
    using recvs of at most [buf] bytes (default 8192) and calls [k] with
    its total size and payload. [k {size = 0; _}] signals EOF before any
    message byte.
    @raise Failure if the peer closes mid-message (protocol violation). *)
