type t = int
type span = int

let zero = 0
let of_ns n = n
let to_ns t = t
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let span_of_float_s s = int_of_float (Float.round (s *. 1e9))
let span_ns d = d
let span_to_float_s d = float_of_int d /. 1e9
let add t d = t + d
let diff a b = a - b
let span_add a b = a + b
let span_sub a b = a - b
let span_scale f d = int_of_float (Float.round (f *. float_of_int d))
let span_max a b = Stdlib.max a b
let span_zero = 0
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let compare_span = Int.compare
let to_float_s t = float_of_int t /. 1e9
let pp ppf t = Format.fprintf ppf "%d.%09ds" (t / 1_000_000_000) (abs (t mod 1_000_000_000))

let pp_span ppf d =
  let a = abs d in
  if a < 1_000 then Format.fprintf ppf "%dns" d
  else if a < 1_000_000 then Format.fprintf ppf "%.3gus" (float_of_int d /. 1e3)
  else if a < 1_000_000_000 then Format.fprintf ppf "%.4gms" (float_of_int d /. 1e6)
  else Format.fprintf ppf "%.6gs" (float_of_int d /. 1e9)
