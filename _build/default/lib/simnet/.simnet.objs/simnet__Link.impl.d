lib/simnet/link.ml: Engine Float Sim_time
