lib/simnet/node.ml: Address Clock Cpu Engine Link Proc Sim_time
