lib/simnet/proc.mli: Format
