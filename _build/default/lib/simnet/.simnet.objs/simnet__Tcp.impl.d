lib/simnet/tcp.ml: Address Cpu Engine Format Hashtbl Link List Node Printf Proc Queue Sim_time
