lib/simnet/clock.ml: Float Sim_time
