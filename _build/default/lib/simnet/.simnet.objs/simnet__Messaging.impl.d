lib/simnet/messaging.ml: Hashtbl Queue Tcp
