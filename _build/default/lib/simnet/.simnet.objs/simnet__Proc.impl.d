lib/simnet/proc.ml: Format Hashtbl Int String
