lib/simnet/tcp.mli: Address Engine Node Proc Sim_time
