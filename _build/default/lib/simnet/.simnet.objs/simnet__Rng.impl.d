lib/simnet/rng.ml: Array Char Float List Random Sim_time String
