lib/simnet/engine.mli: Sim_time
