lib/simnet/rng.mli: Sim_time
