lib/simnet/address.ml: Format Hashtbl Int Printf String
