lib/simnet/cpu.mli: Engine Sim_time
