lib/simnet/sim_time.ml: Float Format Int Stdlib
