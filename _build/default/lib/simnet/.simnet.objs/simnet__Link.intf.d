lib/simnet/link.mli: Engine Sim_time
