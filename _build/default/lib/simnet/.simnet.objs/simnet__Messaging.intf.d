lib/simnet/messaging.mli: Proc Tcp
