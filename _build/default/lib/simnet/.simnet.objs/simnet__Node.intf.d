lib/simnet/node.mli: Address Clock Cpu Engine Link Proc Sim_time
