lib/simnet/clock.mli: Sim_time
