lib/simnet/cpu.ml: Engine Float List Sim_time
