type t = { state : Random.State.t; seed : int }

(* FNV-1a over the label, folded with the parent seed, so that split streams
   are a pure function of (seed, label). *)
let hash_label seed label =
  (* 64-bit constants truncated to OCaml's 63-bit int; collisions remain
     vanishingly unlikely for the handful of labels in use. *)
  let h = ref 0x2f29ce484222325 in
  let fold c =
    h := !h lxor Char.code c;
    h := !h * 0x100000001b3
  in
  String.iter fold label;
  (!h lxor (seed * 0x1e3779b97f4a7c15)) land max_int

let create ~seed = { state = Random.State.make [| seed |]; seed }
let split t label = create ~seed:(hash_label t.seed label)
let int t bound = Random.State.int t.state bound
let float t bound = Random.State.float t.state bound
let bool t = Random.State.bool t.state
let bernoulli t ~p = Random.State.float t.state 1.0 < p

let uniform_span t ~lo ~hi =
  let a = Sim_time.span_ns lo and b = Sim_time.span_ns hi in
  if b <= a then lo else Sim_time.ns (a + Random.State.int t.state (b - a + 1))

let exponential t ~mean =
  let u = 1.0 -. Random.State.float t.state 1.0 in
  -.mean *. log u

let exponential_span t ~mean =
  let m = float_of_int (Sim_time.span_ns mean) in
  Sim_time.ns (max 1 (int_of_float (exponential t ~mean:m)))

let pareto t ~shape ~scale =
  let u = 1.0 -. Random.State.float t.state 1.0 in
  scale *. (u ** (-1.0 /. shape))

let normal t ~mean ~std =
  let u1 = 1.0 -. Random.State.float t.state 1.0 in
  let u2 = Random.State.float t.state 1.0 in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let positive_normal_span t ~mean ~rel_std =
  let m = float_of_int (Sim_time.span_ns mean) in
  let d = normal t ~mean:m ~std:(rel_std *. m) in
  Sim_time.ns (max 1 (int_of_float d))

let choose t arr =
  assert (Array.length arr > 0);
  arr.(Random.State.int t.state (Array.length arr))

let weighted t items =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let x = Random.State.float t.state total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | [ (item, _) ] -> item
    | (item, w) :: rest -> if x < acc +. w then item else pick (acc +. w) rest
  in
  pick 0.0 items

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
