type job = { mutable remaining : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  cores : int;
  switch_penalty : float;
  mutable jobs : job list;
  mutable last_update : Sim_time.t;
  mutable timer : Engine.timer option;
  mutable busy_core_ns : float;
  created : Sim_time.t;
}

let create ~engine ~cores ?(switch_penalty = 0.0) () =
  assert (cores > 0);
  {
    engine;
    cores;
    switch_penalty;
    jobs = [];
    last_update = Engine.now engine;
    timer = None;
    busy_core_ns = 0.0;
    created = Engine.now engine;
  }

let rate t n =
  if n = 0 then 0.0
  else
    let share = Float.min 1.0 (float_of_int t.cores /. float_of_int n) in
    share /. (1.0 +. (t.switch_penalty *. float_of_int (n - 1)))

(* Advance every active job by the time elapsed since the last update. *)
let update_progress t =
  let now = Engine.now t.engine in
  let elapsed = float_of_int (Sim_time.span_ns (Sim_time.diff now t.last_update)) in
  let n = List.length t.jobs in
  if elapsed > 0.0 && n > 0 then begin
    let r = rate t n in
    List.iter (fun j -> j.remaining <- j.remaining -. (elapsed *. r)) t.jobs;
    t.busy_core_ns <- t.busy_core_ns +. (elapsed *. float_of_int (min n t.cores))
  end;
  t.last_update <- now

let fire_completions t =
  let done_, live = List.partition (fun j -> j.remaining <= 1.0) t.jobs in
  t.jobs <- live;
  (* Completion callbacks run after the partition so a callback submitting
     new work sees a consistent job list. *)
  List.iter (fun j -> j.k ()) done_

let rec reschedule t =
  (match t.timer with
  | Some timer ->
      Engine.cancel t.engine timer;
      t.timer <- None
  | None -> ());
  match t.jobs with
  | [] -> ()
  | jobs ->
      let r = rate t (List.length jobs) in
      let min_remaining =
        List.fold_left (fun acc j -> Float.min acc j.remaining) Float.infinity jobs
      in
      let delay = Sim_time.ns (max 1 (int_of_float (Float.ceil (min_remaining /. r)))) in
      t.timer <- Some (Engine.schedule_after t.engine ~delay (fun () -> on_timer t))

and on_timer t =
  t.timer <- None;
  update_progress t;
  fire_completions t;
  reschedule t

let submit t ~work k =
  let work_ns = Sim_time.span_ns work in
  if work_ns <= 0 then ignore (Engine.schedule_after t.engine ~delay:Sim_time.span_zero k)
  else begin
    update_progress t;
    fire_completions t;
    t.jobs <- { remaining = float_of_int work_ns; k } :: t.jobs;
    reschedule t
  end

let active_jobs t = List.length t.jobs

let busy_core_time t =
  let now = Engine.now t.engine in
  let elapsed = float_of_int (Sim_time.span_ns (Sim_time.diff now t.last_update)) in
  let n = List.length t.jobs in
  let extra = if n > 0 then elapsed *. float_of_int (min n t.cores) else 0.0 in
  Sim_time.ns (int_of_float (t.busy_core_ns +. extra))

let utilization t =
  let now = Engine.now t.engine in
  let total = Sim_time.span_ns (Sim_time.diff now t.created) * t.cores in
  if total <= 0 then 0.0
  else float_of_int (Sim_time.span_ns (busy_core_time t)) /. float_of_int total
