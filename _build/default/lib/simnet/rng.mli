(** Deterministic, splittable pseudo-random number generation.

    Every stochastic decision in the simulator draws from an [Rng.t]. A
    generator is created from an integer seed and can be [split] by label
    into an independent stream, so adding a new consumer never perturbs the
    draws seen by existing ones — a prerequisite for reproducible
    experiments. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> string -> t
(** [split t label] is an independent generator derived from [t]'s seed and
    [label]. Splitting is a pure function of (seed, label): the same pair
    always yields the same stream. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p]. *)

val uniform_span : t -> lo:Sim_time.span -> hi:Sim_time.span -> Sim_time.span
(** Uniform duration in [lo, hi]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (both in the caller's
    unit of choice). *)

val exponential_span : t -> mean:Sim_time.span -> Sim_time.span
(** Exponential duration with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto draw: [scale * u^(-1/shape)] for uniform [u]. Heavy-tailed when
    [shape] is small; used for bursty think times and message sizes. *)

val normal : t -> mean:float -> std:float -> float
(** Gaussian draw (Box-Muller). *)

val positive_normal_span : t -> mean:Sim_time.span -> rel_std:float -> Sim_time.span
(** Gaussian duration with standard deviation [rel_std *. mean], truncated
    below at one nanosecond. Models service-time jitter. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> ('a * float) list -> 'a
(** [weighted t items] draws an item with probability proportional to its
    weight. Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
