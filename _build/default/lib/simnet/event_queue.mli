(** A priority queue of timestamped events, ordered by (time, sequence).

    The sequence number breaks ties: two events scheduled for the same
    instant fire in insertion order, which keeps the simulator fully
    deterministic. Cancellation is supported through the handle returned by
    [add]. *)

type 'a t

type handle
(** A token identifying a queued event, usable to cancel it. *)

val create : unit -> 'a t

val add : 'a t -> time:Sim_time.t -> 'a -> handle
(** [add q ~time v] enqueues [v] to fire at [time]. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] marks the event behind [h] as cancelled; it will be skipped
    by [pop]. Cancelling an already-fired or already-cancelled event is a
    no-op. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** [pop q] removes and returns the earliest live event, or [None] if the
    queue holds no live events. *)

val peek_time : 'a t -> Sim_time.t option
(** Time of the earliest live event without removing it. *)

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool
