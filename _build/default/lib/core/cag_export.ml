module Activity = Trace.Activity
module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

let endpoint_str (e : Address.endpoint) = Format.asprintf "%a" Address.pp_endpoint e

let vertex_to_json index (v : Cag.vertex) =
  let a = v.Cag.activity in
  Json.Obj
    [
      ("id", Json.Int index);
      ("kind", Json.String (Activity.kind_to_string a.Activity.kind));
      ("timestamp_ns", Json.Int (Sim_time.to_ns a.timestamp));
      ("host", Json.String a.context.host);
      ("program", Json.String a.context.program);
      ("pid", Json.Int a.context.pid);
      ("tid", Json.Int a.context.tid);
      ("src", Json.String (endpoint_str a.message.flow.src));
      ("dst", Json.String (endpoint_str a.message.flow.dst));
      ("size", Json.Int a.message.size);
    ]

let cag_to_json cag =
  let vertices = Cag.vertices cag in
  let index_of =
    let table = Hashtbl.create 16 in
    List.iteri (fun i (v : Cag.vertex) -> Hashtbl.replace table v.Cag.vid i) vertices;
    fun (v : Cag.vertex) -> Hashtbl.find table v.Cag.vid
  in
  let edges =
    List.map
      (fun (parent, kind, child) ->
        Json.Obj
          [
            ("from", Json.Int (index_of parent));
            ("to", Json.Int (index_of child));
            ( "relation",
              Json.String
                (match kind with Cag.Context_edge -> "context" | Cag.Message_edge -> "message") );
          ])
      (Cag.edges cag)
  in
  Json.Obj
    [
      ("cag_id", Json.Int cag.Cag.cag_id);
      ("finished", Json.Bool (Cag.is_finished cag));
      ("duration_ns", Json.Int (Sim_time.span_ns (Cag.duration cag)));
      ("route", Json.String (Pattern.name_of cag));
      ("vertices", Json.List (List.mapi vertex_to_json vertices));
      ("edges", Json.List edges);
    ]

let paths_to_json cags = Json.List (List.map cag_to_json cags)

let pattern_summary_to_json patterns =
  Json.List
    (List.map
       (fun p ->
         let finished = List.filter Cag.is_finished p.Pattern.cags in
         let profile =
           match finished with
           | [] -> Json.Null
           | _ ->
               let avg = Aggregate.of_pattern p in
               Json.Obj
                 (List.map
                    (fun (c, pct) -> (Latency.component_label c, Json.Float pct))
                    (Aggregate.component_percentages avg))
         in
         Json.Obj
           [
             ("route", Json.String p.Pattern.name);
             ("paths", Json.Int (Pattern.count p));
             ("latency_percentages", profile);
           ])
       patterns)

let verdict_to_json (v : Accuracy.verdict) =
  Json.Obj
    [
      ("accuracy", Json.Float v.Accuracy.accuracy);
      ("correct", Json.Int v.correct);
      ("total_requests", Json.Int v.total_requests);
      ("false_positives", Json.Int v.false_positives);
      ("false_negatives", Json.Int v.false_negatives);
    ]
