(** Terminal rendering of causal paths: one swimlane per execution entity.

    {v
    CAG 0  ViewItem-like  total 23.8ms
    web1/httpd[1000]   B----S..................R--E
    app1/java[20001]        R--S...........R--S
    db1/mysqld[20001]           R-------S
                        |-------------------------| 23.8ms
    v}

    Letters mark activities (B/S/R/E); dashes span the interval between an
    entity's first and last activity in the path; dots mark time the
    entity spends blocked on downstream work. Columns map linearly onto
    the path's (raw, local-clock) time span — cross-node lanes shift by
    their clock skew, exactly as the underlying timestamps do; pass a
    {!Skew_estimator} to straighten them. *)

val render : ?width:int -> ?skew:Skew_estimator.t -> Cag.t -> string
(** [width] is the time-axis width in columns (default 64, minimum 16). *)

val pp : Format.formatter -> Cag.t -> unit
(** [render] with defaults. *)
