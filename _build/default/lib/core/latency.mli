(** Component latency accounting over a CAG (§3.2, Figs. 15 and 17).

    The paper reports, for an average causal path, the share of end-to-end
    time spent in each {e component}: either inside one tier
    ([httpd2httpd], [java2java], ...) or in one tier-to-tier interaction
    ([httpd2java], [mysqld2java], ...). For the synchronous request/
    response services in scope, those components tile the request's
    {e critical path}: the chain obtained by walking back from END and
    following, at each RECEIVE, its message parent (the true causal
    antecedent) and otherwise its context parent.

    Hop latencies are local-timestamp differences. Hops inside one node
    are exact; cross-node hops absorb the clock skew between the two nodes
    (the paper accepts the same inaccuracy) — and because every such skew
    is traversed once in each direction, the hop latencies still
    telescope to the skew-free end-to-end duration. *)

type component = { src : string; dst : string }
(** [src]/[dst] are program names (optionally normalised). A hop within
    one entity has [src = dst]. *)

val component_label : component -> string
(** ["httpd2java"] — the paper's naming. *)

val compare_component : component -> component -> int
val equal_component : component -> component -> bool

type hop = {
  comp : component;
  parent : Cag.vertex;
  child : Cag.vertex;
  span : Simnet.Sim_time.span;
}

val critical_path : ?normalize:(string -> string) -> Cag.t -> hop list
(** The BEGIN->END chain of a finished CAG, in causal order. [normalize]
    maps program names to tier labels (default: identity).
    @raise Invalid_argument on an unfinished CAG. *)

val breakdown : ?normalize:(string -> string) -> Cag.t -> (component * Simnet.Sim_time.span) list
(** Critical-path hop spans summed per component, in first-appearance
    order. The spans sum to {!Cag.duration}. *)

val percentages : (component * Simnet.Sim_time.span) list -> (component * float) list
(** Each component's share of the total, in [0, 1] (clamping is not
    applied: extreme clock skew can push individual shares outside). *)
