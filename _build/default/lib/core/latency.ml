module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time

type component = { src : string; dst : string }

let component_label c = c.src ^ "2" ^ c.dst

let compare_component a b =
  match String.compare a.src b.src with 0 -> String.compare a.dst b.dst | c -> c

let equal_component a b = compare_component a b = 0

type hop = {
  comp : component;
  parent : Cag.vertex;
  child : Cag.vertex;
  span : Sim_time.span;
}

(* Walking back from END: a RECEIVE follows its message parent, everything
   else its context parent. *)
let causal_parent (v : Cag.vertex) =
  let prefer kind =
    List.find_opt (fun (k, _) -> k = kind) v.Cag.parents |> Option.map snd
  in
  match v.Cag.activity.Activity.kind with
  | Activity.Receive -> (
      match prefer Cag.Message_edge with Some p -> Some p | None -> prefer Cag.Context_edge)
  | Activity.Begin | Activity.End_ | Activity.Send -> (
      match prefer Cag.Context_edge with Some p -> Some p | None -> prefer Cag.Message_edge)

let critical_path ?(normalize = fun s -> s) cag =
  if not (Cag.is_finished cag) then invalid_arg "Latency.critical_path: CAG not finished";
  let program (v : Cag.vertex) = normalize v.Cag.activity.Activity.context.program in
  let rec back v acc =
    match causal_parent v with
    | None -> acc
    | Some p ->
        let hop =
          {
            comp = { src = program p; dst = program v };
            parent = p;
            child = v;
            span =
              Sim_time.diff v.Cag.activity.Activity.timestamp p.Cag.activity.Activity.timestamp;
          }
        in
        back p (hop :: acc)
  in
  let vertices = Cag.vertices cag in
  let last = List.nth vertices (List.length vertices - 1) in
  back last []

let breakdown ?normalize cag =
  let hops = critical_path ?normalize cag in
  let order = ref [] in
  let table = Hashtbl.create 8 in
  let add hop =
    let key = component_label hop.comp in
    match Hashtbl.find_opt table key with
    | Some total -> Hashtbl.replace table key (Sim_time.span_add total hop.span)
    | None ->
        order := hop.comp :: !order;
        Hashtbl.replace table key hop.span
  in
  List.iter add hops;
  List.rev_map (fun comp -> (comp, Hashtbl.find table (component_label comp))) !order

let percentages parts =
  let total =
    List.fold_left (fun acc (_, s) -> acc + Sim_time.span_ns s) 0 parts |> float_of_int
  in
  if total = 0.0 then List.map (fun (c, _) -> (c, 0.0)) parts
  else List.map (fun (c, s) -> (c, float_of_int (Sim_time.span_ns s) /. total)) parts
