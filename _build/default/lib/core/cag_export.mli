(** Machine-readable exports of causal paths and analysis results.

    Dashboards and downstream tooling (Jaeger-style viewers, notebooks)
    consume paths as JSON; this module defines that schema:

    {v
    { "cag_id": 0, "finished": true, "duration_ns": ...,
      "vertices": [ { "id": 0, "kind": "BEGIN", "timestamp_ns": ...,
                      "host": ..., "program": ..., "pid": ..., "tid": ...,
                      "src": "ip:port", "dst": "ip:port", "size": ... }, ... ],
      "edges": [ { "from": 0, "to": 1, "relation": "context" }, ... ] }
    v}

    Vertex ids are CAG-local indices in causal order. *)

val cag_to_json : Cag.t -> Json.t

val paths_to_json : Cag.t list -> Json.t
(** A JSON array of CAGs. *)

val pattern_summary_to_json : Pattern.t list -> Json.t
(** Per-pattern name, population, and (for finished members) the average
    path's component latency percentages. *)

val verdict_to_json : Accuracy.verdict -> Json.t
