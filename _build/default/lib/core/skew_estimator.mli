(** Clock-skew estimation from causal paths (extension ext-4).

    The paper accepts that cross-node interaction latencies absorb clock
    skew ("we do not remedy the clock skew"). The CAGs themselves contain
    enough information to remedy most of it: every message edge from host
    A to host B observes [d_AB = latency + (offset_B - offset_A)], and
    latency is non-negative and bounded below by the network's minimum
    delay. Under the classic symmetric-minimum assumption (the fastest
    A->B message and the fastest B->A message saw the same network delay
    — NTP's reasoning), the per-pair offset is

    {v offset_B - offset_A = (min d_AB - min d_BA) / 2 v}

    Offsets are then anchored to a reference host and propagated over the
    pair graph, so hosts that never exchange messages directly are still
    aligned through common peers. The estimate cannot see the true
    one-way asymmetry, so residual error is bounded by half the
    difference of the two directions' minimum delays. *)

type t

type estimate = {
  host : string;
  offset : Simnet.Sim_time.span;
      (** Estimated clock offset relative to the reference host: local
          timestamps of [host] read [offset] later than the reference's
          for the same instant. *)
  pairs_used : int;  (** Host pairs contributing to this estimate. *)
}

val estimate : ?reference:string -> Cag.t list -> t
(** Learn offsets from the message edges of the given (finished or not)
    CAGs. [reference] defaults to the first host seen (CAG roots' host in
    practice — the entry tier). Hosts unreachable through shared message
    edges keep offset 0 and [pairs_used = 0]. *)

val offsets : t -> estimate list
(** One entry per host, reference first. *)

val offset_of : t -> string -> Simnet.Sim_time.span
(** 0 for unknown hosts. *)

val samples : t -> (string * string * int) list
(** Message-edge sample counts per ordered host pair. *)

val correct_activity_ts : t -> Trace.Activity.t -> Simnet.Sim_time.t
(** The activity's timestamp mapped onto the reference clock. *)

val corrected_breakdown :
  ?normalize:(string -> string) -> t -> Cag.t -> (Latency.component * Simnet.Sim_time.span) list
(** {!Latency.breakdown} with every hop latency computed on skew-corrected
    timestamps: cross-node components become meaningful even under
    hundreds of milliseconds of skew. *)
