lib/core/json.mli:
