lib/core/deque.ml: Array
