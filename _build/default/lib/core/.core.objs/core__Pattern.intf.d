lib/core/pattern.mli: Cag Format
