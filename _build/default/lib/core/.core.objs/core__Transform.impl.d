lib/core/transform.ml: List Simnet String Trace
