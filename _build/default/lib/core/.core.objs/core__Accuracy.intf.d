lib/core/accuracy.mli: Cag Format Simnet Trace
