lib/core/cag.mli: Format Simnet Trace
