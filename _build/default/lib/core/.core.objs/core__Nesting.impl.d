lib/core/nesting.ml: Accuracy Hashtbl List Queue Simnet Trace
