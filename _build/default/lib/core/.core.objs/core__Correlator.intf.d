lib/core/correlator.mli: Cag Cag_engine Ranker Simnet Trace Transform
