lib/core/ranker.mli: Simnet Trace
