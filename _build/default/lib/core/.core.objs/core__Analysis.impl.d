lib/core/analysis.ml: Aggregate Float Format Hashtbl Latency List Printf String
