lib/core/aggregate.mli: Format Latency Pattern
