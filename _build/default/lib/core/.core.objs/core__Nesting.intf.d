lib/core/nesting.mli: Accuracy Simnet Trace
