lib/core/dpm.mli: Simnet Trace
