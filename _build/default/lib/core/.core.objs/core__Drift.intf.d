lib/core/drift.mli: Cag Format Latency
