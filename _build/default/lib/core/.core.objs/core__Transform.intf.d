lib/core/transform.mli: Simnet Trace
