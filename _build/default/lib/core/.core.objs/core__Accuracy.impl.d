lib/core/accuracy.ml: Cag Format Hashtbl List Printf Simnet Trace
