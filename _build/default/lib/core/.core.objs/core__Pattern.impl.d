lib/core/pattern.ml: Buffer Cag Format Hashtbl Int Latency List Printf String Trace
