lib/core/report.mli: Simnet
