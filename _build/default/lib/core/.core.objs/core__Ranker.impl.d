lib/core/ranker.ml: Array Deque List Simnet String Trace
