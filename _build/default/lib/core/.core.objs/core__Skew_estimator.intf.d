lib/core/skew_estimator.mli: Cag Latency Simnet Trace
