lib/core/deque.mli:
