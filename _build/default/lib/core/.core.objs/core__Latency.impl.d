lib/core/latency.ml: Cag Hashtbl List Option Simnet String Trace
