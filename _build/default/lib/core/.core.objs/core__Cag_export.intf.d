lib/core/cag_export.mli: Accuracy Cag Json Pattern
