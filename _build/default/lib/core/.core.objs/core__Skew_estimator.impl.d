lib/core/skew_estimator.ml: Cag Hashtbl Latency List Queue Simnet String Trace
