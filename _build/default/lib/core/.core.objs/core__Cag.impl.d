lib/core/cag.ml: Buffer Format Hashtbl List Printf Result Simnet Trace
