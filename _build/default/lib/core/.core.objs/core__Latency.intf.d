lib/core/latency.mli: Cag Simnet
