lib/core/drift.ml: Array Cag Float Format Hashtbl Latency List Pattern String
