lib/core/cag_export.ml: Accuracy Aggregate Cag Format Hashtbl Json Latency List Pattern Simnet Trace
