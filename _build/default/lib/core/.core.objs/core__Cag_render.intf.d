lib/core/cag_render.mli: Cag Format Skew_estimator
