lib/core/dpm.ml: Accuracy Array Hashtbl List Queue Simnet Trace
