lib/core/cag_engine.ml: Cag Deque Hashtbl List Simnet Trace
