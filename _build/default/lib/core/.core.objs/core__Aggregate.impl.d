lib/core/aggregate.ml: Array Cag Float Format Hashtbl Latency List Pattern Simnet
