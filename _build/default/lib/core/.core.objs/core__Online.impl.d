lib/core/online.ml: Cag_engine Correlator Ranker Trace Transform
