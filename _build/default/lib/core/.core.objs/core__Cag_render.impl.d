lib/core/cag_render.ml: Buffer Bytes Cag Format Hashtbl List Pattern Printf Simnet Skew_estimator String Trace
