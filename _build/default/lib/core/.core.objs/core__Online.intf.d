lib/core/online.mli: Cag Cag_engine Correlator Ranker Trace
