lib/core/cag_engine.mli: Cag Simnet Trace
