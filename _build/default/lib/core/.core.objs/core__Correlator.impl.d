lib/core/correlator.ml: Cag Cag_engine Ranker Simnet Trace Transform Unix
