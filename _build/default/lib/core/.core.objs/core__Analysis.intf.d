lib/core/analysis.mli: Aggregate Format Latency
