module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time

let letter = function
  | Activity.Begin -> 'B'
  | Activity.Send -> 'S'
  | Activity.Receive -> 'R'
  | Activity.End_ -> 'E'

let context_key (c : Activity.context) = (c.Activity.host, c.program, c.pid, c.tid)

let render ?(width = 64) ?skew cag =
  let width = max 16 width in
  let ts_of (v : Cag.vertex) =
    match skew with
    | Some est -> Skew_estimator.correct_activity_ts est v.Cag.activity
    | None -> v.Cag.activity.Activity.timestamp
  in
  let vertices = Cag.vertices cag in
  let t0 =
    List.fold_left (fun acc v -> Sim_time.min acc (ts_of v)) (ts_of (List.hd vertices)) vertices
  in
  let t1 =
    List.fold_left (fun acc v -> Sim_time.max acc (ts_of v)) (ts_of (List.hd vertices)) vertices
  in
  let span = max 1 (Sim_time.span_ns (Sim_time.diff t1 t0)) in
  let col v =
    let off = Sim_time.span_ns (Sim_time.diff (ts_of v) t0) in
    min (width - 1) (max 0 (off * (width - 1) / span))
  in
  (* lanes in first-touch order *)
  let lane_order = ref [] in
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun (v : Cag.vertex) ->
      let key = context_key v.Cag.activity.Activity.context in
      if not (Hashtbl.mem lanes key) then begin
        lane_order := key :: !lane_order;
        Hashtbl.replace lanes key (Bytes.make width ' ')
      end)
    vertices;
  let lane_of (v : Cag.vertex) = Hashtbl.find lanes (context_key v.Cag.activity.Activity.context) in
  (* waiting/idle fill between each lane's first and last activity *)
  let bounds = Hashtbl.create 8 in
  List.iter
    (fun (v : Cag.vertex) ->
      let key = context_key v.Cag.activity.Activity.context in
      let c = col v in
      match Hashtbl.find_opt bounds key with
      | Some (lo, hi) -> Hashtbl.replace bounds key (min lo c, max hi c)
      | None -> Hashtbl.replace bounds key (c, c))
    vertices;
  Hashtbl.iter
    (fun key (lo, hi) ->
      let lane = Hashtbl.find lanes key in
      for i = lo to hi do
        Bytes.set lane i '.'
      done)
    bounds;
  (* processing fill: context edges within a lane *)
  List.iter
    (fun (parent, kind, child) ->
      match kind with
      | Cag.Context_edge
        when Activity.equal_context
               (parent : Cag.vertex).Cag.activity.Activity.context
               (child : Cag.vertex).Cag.activity.Activity.context ->
          let lane = lane_of parent in
          let a = min (col parent) (col child) and b = max (col parent) (col child) in
          for i = a to b do
            Bytes.set lane i '-'
          done
      | Cag.Context_edge | Cag.Message_edge -> ())
    (Cag.edges cag);
  (* activity letters *)
  List.iter
    (fun (v : Cag.vertex) -> Bytes.set (lane_of v) (col v) (letter v.Cag.activity.Activity.kind))
    vertices;
  let label (host, program, _, tid) = Printf.sprintf "%s/%s[%d]" host program tid in
  let labels = List.rev_map label !lane_order in
  let label_width = List.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "CAG %d  %s  total %s\n" cag.Cag.cag_id (Pattern.name_of cag)
       (Format.asprintf "%a" Sim_time.pp_span (Cag.duration cag)));
  List.iter
    (fun key ->
      let l = label key in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %s\n" label_width l (Bytes.to_string (Hashtbl.find lanes key))))
    (List.rev !lane_order);
  Buffer.add_string buf
    (Printf.sprintf "%-*s  |%s| %s\n" label_width ""
       (String.make (width - 2) '-')
       (Format.asprintf "%a" Sim_time.pp_span (Sim_time.diff t1 t0)));
  Buffer.contents buf

let pp ppf cag = Format.pp_print_string ppf (render cag)
