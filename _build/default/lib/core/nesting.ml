module Activity = Trace.Activity
module Address = Simnet.Address
module Ground_truth = Trace.Ground_truth
module Sim_time = Simnet.Sim_time

type path = { entry_ts : Sim_time.t; visits : Ground_truth.visit list }

(* pid-granularity context: thread identity erased. *)
let coarsen (c : Activity.context) = { c with Activity.tid = c.Activity.pid }

type open_path = {
  started : Sim_time.t;
  mutable stack : Activity.context list;  (* call stack of entities, top first *)
  mutable visit_order : Activity.context list;  (* first-touch order, reversed *)
  visit_table : (string * string * int, Sim_time.t * Sim_time.t) Hashtbl.t;
  mutable completed : bool;
}

let ctx_key (c : Activity.context) = (c.Activity.host, c.program, c.pid)

let touch path ctx ts =
  let key = ctx_key ctx in
  match Hashtbl.find_opt path.visit_table key with
  | Some (b, e) -> Hashtbl.replace path.visit_table key (Sim_time.min b ts, Sim_time.max e ts)
  | None ->
      Hashtbl.replace path.visit_table key (ts, ts);
      path.visit_order <- ctx :: path.visit_order

type entity_state = { mutable open_paths : open_path list (* most recently active first *) }

type flow_entry = { path : open_path option; mutable remaining : int }

type state = {
  entities : (string * string * int, entity_state) Hashtbl.t;
  flows : flow_entry Queue.t Address.Flow_table.t;
  mutable rev_done : open_path list;
}

let entity st ctx =
  let key = ctx_key ctx in
  match Hashtbl.find_opt st.entities key with
  | Some e -> e
  | None ->
      let e = { open_paths = [] } in
      Hashtbl.replace st.entities key e;
      e

let promote_path e p = e.open_paths <- p :: List.filter (fun q -> q != p) e.open_paths

let flow_queue st flow =
  match Address.Flow_table.find_opt st.flows flow with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Address.Flow_table.replace st.flows flow q;
      q

(* A (part of a) message attributed to [p] has fully arrived at [ctx]. *)
let arrival st p ctx ts =
  match p with
  | None -> ()
  | Some p ->
      if p.completed then ()
      else begin
        touch p ctx ts;
        (match p.stack with
        | top :: _ when Activity.equal_context top ctx -> ()
        | stack when List.exists (Activity.equal_context ctx) stack ->
            (* A reply: unwind to the caller. *)
            let rec unwind = function
              | top :: _ as s when Activity.equal_context top ctx -> s
              | _ :: rest -> unwind rest
              | [] -> [ ctx ]
            in
            p.stack <- unwind stack
        | stack -> p.stack <- ctx :: stack);
        promote_path (entity st ctx) p
      end

let handle st (a : Activity.t) =
  let ctx = coarsen a.Activity.context in
  let ts = a.timestamp in
  match a.kind with
  | Activity.Begin ->
      let p =
        {
          started = ts;
          stack = [ ctx ];
          visit_order = [ ctx ];
          visit_table = Hashtbl.create 8;
          completed = false;
        }
      in
      Hashtbl.replace p.visit_table (ctx_key ctx) (ts, ts);
      let e = entity st ctx in
      e.open_paths <- p :: e.open_paths
  | Activity.Send -> (
      let e = entity st ctx in
      (* LIFO attribution: the entity's most recently active open path. *)
      let attributed =
        List.find_opt (fun p -> List.exists (Activity.equal_context ctx) p.stack) e.open_paths
      in
      (match attributed with Some p -> touch p ctx ts | None -> ());
      Queue.push { path = attributed; remaining = a.message.size } (flow_queue st a.message.flow);
      match attributed with Some p -> promote_path e p | None -> ())
  | Activity.Receive ->
      let q = flow_queue st a.message.flow in
      let rec consume n =
        if n > 0 && not (Queue.is_empty q) then begin
          let entry = Queue.peek q in
          let used = min n entry.remaining in
          entry.remaining <- entry.remaining - used;
          if entry.remaining = 0 then begin
            ignore (Queue.pop q);
            arrival st entry.path ctx ts
          end
          else (match entry.path with Some p when not p.completed -> touch p ctx ts | _ -> ());
          consume (n - used)
        end
      in
      consume a.message.size
  | Activity.End_ -> (
      let e = entity st ctx in
      match
        List.find_opt
          (fun p -> match p.stack with top :: _ -> Activity.equal_context top ctx | [] -> false)
          e.open_paths
      with
      | Some p ->
          touch p ctx ts;
          p.completed <- true;
          e.open_paths <- List.filter (fun q -> q != p) e.open_paths;
          st.rev_done <- p :: st.rev_done
      | None -> ())

let path_of_open (p : open_path) =
  {
    entry_ts = p.started;
    visits =
      List.rev_map
        (fun ctx ->
          let b, e = Hashtbl.find p.visit_table (ctx_key ctx) in
          { Ground_truth.context = ctx; begin_ts = b; end_ts = e })
        p.visit_order;
  }

let infer collection =
  let st =
    { entities = Hashtbl.create 64; flows = Address.Flow_table.create 256; rev_done = [] }
  in
  (* The baseline merges everything by raw local timestamps and trusts
     them — its defining approximation. *)
  let merged =
    List.concat_map Trace.Log.to_list collection |> List.stable_sort Activity.compare_by_time
  in
  List.iter (handle st) merged;
  (* Completion order. *)
  List.rev_map path_of_open st.rev_done

(* Coarsen an oracle request to pid granularity: tids erased, visits of the
   same entity merged (keeping first-touch order). *)
let coarsen_request (r : Ground_truth.request) =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun (v : Ground_truth.visit) ->
      let ctx = coarsen v.context in
      let key = ctx_key ctx in
      match Hashtbl.find_opt table key with
      | Some (b, e) ->
          Hashtbl.replace table key (Sim_time.min b v.begin_ts, Sim_time.max e v.end_ts)
      | None ->
          Hashtbl.replace table key (v.begin_ts, v.end_ts);
          order := ctx :: !order)
    r.visits;
  {
    r with
    Ground_truth.visits =
      (* [order] is reversed first-touch; rev_map restores the order. *)
      List.rev_map
        (fun ctx ->
          let b, e = Hashtbl.find table (ctx_key ctx) in
          { Ground_truth.context = ctx; begin_ts = b; end_ts = e })
        !order;
  }

let score ?tolerance ~ground_truth paths =
  let requests = List.map coarsen_request (Ground_truth.requests ground_truth) in
  Accuracy.check_visits ?tolerance ~requests (List.map (fun p -> p.visits) paths)
