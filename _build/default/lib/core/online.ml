module Activity = Trace.Activity

type t = {
  transform : Transform.config;
  ranker : Ranker.t;
  engine : Cag_engine.t;
  mutable accepted : int;
  mutable resolved : int;
}

let drain t =
  let rec loop () =
    match Ranker.rank_step t.ranker with
    | Ranker.Candidate a ->
        t.resolved <- t.resolved + 1;
        Cag_engine.step t.engine a;
        loop ()
    | Ranker.Need_input | Ranker.Exhausted -> ()
  in
  loop ()

let create ~config ~hosts ?(on_path = fun _ -> ()) () =
  let engine = Cag_engine.create ~on_finished:on_path () in
  let ranker =
    Ranker.create_online ~window:config.Correlator.window
      ~skew_allowance:config.Correlator.skew_allowance
      ~ablation:config.Correlator.ablation
      ~has_mmap_send:(Cag_engine.has_mmap_send engine)
      ~hosts ()
  in
  { transform = config.Correlator.transform; ranker; engine; accepted = 0; resolved = 0 }

let observe t raw =
  match Transform.classify t.transform raw with
  | None -> ()
  | Some activity ->
      Ranker.feed t.ranker activity;
      t.accepted <- t.accepted + 1;
      drain t

let finish t =
  Ranker.close_input t.ranker;
  drain t

let paths t = Cag_engine.finished t.engine
let deformed t = Cag_engine.unfinished t.engine

let pending t =
  let s = Ranker.stats t.ranker in
  t.accepted - s.Ranker.candidates - s.Ranker.noise_discarded
let ranker_stats t = Ranker.stats t.ranker
let engine_stats t = Cag_engine.stats t.engine

let attach ~config ~probe ~hosts ?on_path () =
  let t = create ~config ~hosts ?on_path () in
  Trace.Probe.add_listener probe (observe t);
  t
