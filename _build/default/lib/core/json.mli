(** A minimal JSON emitter (no external dependency).

    Only what exporting CAGs and reports needs: construction and compact
    or indented serialisation, with correct string escaping. Parsing is
    out of scope — this library produces JSON for other tools to read. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with 2-space
    indentation. Floats are emitted with enough digits to round-trip;
    non-finite floats become [null]. *)

val escape_string : string -> string
(** The quoted, escaped JSON form of a string (exposed for tests). *)
