module Activity = Trace.Activity
module Address = Simnet.Address
module Ground_truth = Trace.Ground_truth
module Sim_time = Simnet.Sim_time

(* A logical message: its sending entity and instant, and (unless it leaves
   the traced perimeter, like an END) its receiving entity and instant. *)
type message = {
  mid : int;
  src : Activity.context option;  (* None for BEGIN: sender untraced *)
  send_ts : Sim_time.t;  (* BEGIN: the entry receive's timestamp *)
  dst : Activity.context option;  (* None for END: receiver untraced *)
  recv_ts : Sim_time.t;
  is_begin : bool;
  is_end : bool;
}

module Context_table = Hashtbl.Make (struct
  type t = Activity.context

  let equal = Activity.equal_context
  let hash = Activity.hash_context
end)

type t = {
  messages : message array;
  edges : int list array;  (* adjacency: message index -> successors *)
  edge_count : int;
  begins : int list;
}

(* Pair SEND/RECEIVE syscalls into logical messages: FIFO per flow with
   byte counting, consecutive same-flow sends merged (first timestamp
   kept), receive completion at the last chunk — the same n-to-n treatment
   the engine applies, standalone. *)
let pair_messages activities =
  let messages = ref [] in
  let next_mid = ref 0 in
  let fresh ~src ~send_ts ~dst ~recv_ts ~is_begin ~is_end =
    let m = { mid = !next_mid; src; send_ts; dst; recv_ts; is_begin; is_end } in
    incr next_mid;
    messages := m :: !messages;
    m
  in
  (* outstanding send bytes per flow: (send ctx, first ts, remaining) *)
  let outstanding : (Activity.context * Sim_time.t * int ref) Queue.t Address.Flow_table.t =
    Address.Flow_table.create 64
  in
  let last_send : (Activity.context * Sim_time.t * int ref) option Address.Flow_table.t =
    Address.Flow_table.create 64
  in
  let queue_of flow =
    match Address.Flow_table.find_opt outstanding flow with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Address.Flow_table.replace outstanding flow q;
        q
  in
  let last_end : (Activity.context * Sim_time.t) option ref = ref None in
  List.iter
    (fun (a : Activity.t) ->
      match a.kind with
      | Activity.Begin ->
          ignore
            (fresh ~src:None ~send_ts:a.timestamp ~dst:(Some a.context) ~recv_ts:a.timestamp
               ~is_begin:true ~is_end:false)
      | Activity.End_ -> (
          (* merge consecutive END syscalls of one response *)
          match !last_end with
          | Some (ctx, _) when Activity.equal_context ctx a.context -> ()
          | _ ->
              last_end := Some (a.context, a.timestamp);
              ignore
                (fresh ~src:(Some a.context) ~send_ts:a.timestamp ~dst:None
                   ~recv_ts:a.timestamp ~is_begin:false ~is_end:true))
      | Activity.Send -> (
          last_end := None;
          let flow = a.message.flow in
          match Address.Flow_table.find_opt last_send flow with
          | Some (Some (ctx, _, remaining))
            when Activity.equal_context ctx a.context && !remaining > 0 ->
              remaining := !remaining + a.message.size
          | _ ->
              let entry = (a.context, a.timestamp, ref a.message.size) in
              Queue.push entry (queue_of flow);
              Address.Flow_table.replace last_send flow (Some entry))
      | Activity.Receive -> (
          let flow = a.message.flow in
          let q = queue_of flow in
          if not (Queue.is_empty q) then begin
            let _, _, remaining = Queue.peek q in
            remaining := !remaining - a.message.size;
            if !remaining <= 0 then begin
              let ctx, send_ts, _ = Queue.pop q in
              (match Address.Flow_table.find_opt last_send flow with
              | Some (Some (_, ts, _)) when Sim_time.equal ts send_ts ->
                  Address.Flow_table.replace last_send flow None
              | _ -> ());
              ignore
                (fresh ~src:(Some ctx) ~send_ts ~dst:(Some a.context) ~recv_ts:a.timestamp
                   ~is_begin:false ~is_end:false)
            end
          end))
    activities;
  List.rev !messages

let build collection =
  let merged =
    List.concat_map Trace.Log.to_list collection
    |> List.stable_sort Activity.compare_by_time
  in
  let messages = Array.of_list (pair_messages merged) in
  (* per entity: arrivals and departures in time order *)
  let arrivals : (Sim_time.t * int) list ref Context_table.t = Context_table.create 64 in
  let departures : (Sim_time.t * int) list ref Context_table.t = Context_table.create 64 in
  let note table ctx ts idx =
    match Context_table.find_opt table ctx with
    | Some l -> l := (ts, idx) :: !l
    | None -> Context_table.replace table ctx (ref [ (ts, idx) ])
  in
  Array.iteri
    (fun i m ->
      (match m.dst with Some ctx -> note arrivals ctx m.recv_ts i | None -> ());
      match m.src with Some ctx -> note departures ctx m.send_ts i | None -> ())
    messages;
  let edges = Array.make (Array.length messages) [] in
  let edge_count = ref 0 in
  (* DPM pairing: each arrival links to every departure of the same entity
     until the entity's next arrival. *)
  Context_table.iter
    (fun ctx arr ->
      let sorted l = List.sort (fun (a, _) (b, _) -> Sim_time.compare a b) !l in
      let arr = sorted arr in
      let dep =
        match Context_table.find_opt departures ctx with Some d -> sorted d | None -> []
      in
      let rec walk arr =
        match arr with
        | [] -> ()
        | (t_in, idx_in) :: rest ->
            let t_next = match rest with (t, _) :: _ -> Some t | [] -> None in
            let inside (t, _) =
              Sim_time.(t >= t_in)
              && match t_next with Some tn -> Sim_time.(t < tn) | None -> true
            in
            let succs = List.filter inside dep |> List.map snd in
            edges.(idx_in) <- succs;
            edge_count := !edge_count + List.length succs;
            walk rest
      in
      walk arr)
    arrivals;
  let begins =
    Array.to_list (Array.mapi (fun i m -> (i, m)) messages)
    |> List.filter_map (fun (i, m) -> if m.is_begin then Some i else None)
  in
  { messages; edges; edge_count = !edge_count; begins }

let edge_count t = t.edge_count
let message_count t = Array.length t.messages

type path_stats = {
  paths_found : int;
  real_paths : int;
  phantom_paths : int;
  truncated : bool;
}

(* Turn a path (message index list, in order) into per-entity visit
   intervals, first-touch order. *)
let visits_of_path t path =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  let touch ctx ts =
    let key = (ctx.Activity.host, ctx.program, ctx.pid, ctx.tid) in
    match Hashtbl.find_opt table key with
    | Some (c, lo, hi) -> Hashtbl.replace table key (c, Sim_time.min lo ts, Sim_time.max hi ts)
    | None ->
        order := key :: !order;
        Hashtbl.replace table key (ctx, ts, ts)
  in
  List.iter
    (fun idx ->
      let m = t.messages.(idx) in
      (match m.dst with Some ctx -> touch ctx m.recv_ts | None -> ());
      match m.src with Some ctx -> touch ctx m.send_ts | None -> ())
    path;
  List.rev_map
    (fun key ->
      let ctx, lo, hi = Hashtbl.find table key in
      { Ground_truth.context = ctx; begin_ts = lo; end_ts = hi })
    !order

let evaluate ?(max_paths = 10_000) ?tolerance ~ground_truth t =
  let paths = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let rec dfs idx acc =
    if !count >= max_paths then truncated := true
    else begin
      let m = t.messages.(idx) in
      let acc = idx :: acc in
      if m.is_end then begin
        incr count;
        paths := List.rev acc :: !paths
      end
      else List.iter (fun succ -> dfs succ acc) t.edges.(idx)
    end
  in
  List.iter (fun b -> dfs b []) t.begins;
  let visits_list = List.rev_map (visits_of_path t) !paths in
  let verdict =
    Accuracy.check_visits ?tolerance
      ~requests:(Ground_truth.requests ground_truth)
      visits_list
  in
  {
    paths_found = !count;
    real_paths = verdict.Accuracy.correct;
    phantom_paths = verdict.Accuracy.false_positives;
    truncated = !truncated;
  }
