module Sim_time = Simnet.Sim_time

type config = {
  transform : Transform.config;
  window : Sim_time.span;
  skew_allowance : Sim_time.span;
  ablation : Ranker.ablation;
}

let config ~transform ?(window = Sim_time.ms 10) ?(skew_allowance = Sim_time.sec 1)
    ?(ablation = Ranker.no_ablation) () =
  { transform; window; skew_allowance; ablation }

type result = {
  cags : Cag.t list;
  deformed : Cag.t list;
  ranker_stats : Ranker.stats;
  engine_stats : Cag_engine.stats;
  correlation_time : float;
  peak_memory_proxy : int;
  memory_bytes_estimate : int;
}

(* Rough per-record footprint: an activity record plus its share of queue,
   index-map and vertex overhead, in bytes. Used only to scale the memory
   proxy into familiar units. *)
let bytes_per_record = 160

let correlate_stream cfg collection ~on_path =
  let t0 = Unix.gettimeofday () in
  let prepared = Transform.apply cfg.transform collection in
  let engine = Cag_engine.create ~on_finished:on_path () in
  let ranker =
    Ranker.create ~window:cfg.window ~skew_allowance:cfg.skew_allowance
      ~ablation:cfg.ablation
      ~has_mmap_send:(Cag_engine.has_mmap_send engine)
      prepared
  in
  let peak = ref 0 in
  let steps = ref 0 in
  let rec loop () =
    match Ranker.rank ranker with
    | None -> ()
    | Some activity ->
        Cag_engine.step engine activity;
        incr steps;
        (* Periodically evict unmatched sends that can no longer match:
           anything older than twice the skew allowance behind the
           correlation frontier. *)
        if !steps land 0xfff = 0 then begin
          let horizon =
            Sim_time.add activity.Trace.Activity.timestamp
              (Sim_time.span_scale (-2.0) cfg.skew_allowance)
          in
          ignore (Cag_engine.gc engine ~older_than:horizon)
        end;
        let held =
          Ranker.buffered ranker + Cag_engine.live_vertices engine
          + Cag_engine.mmap_entries engine
        in
        if held > !peak then peak := held;
        loop ()
  in
  loop ();
  let correlation_time = Unix.gettimeofday () -. t0 in
  {
    cags = Cag_engine.finished engine;
    deformed = Cag_engine.unfinished engine;
    ranker_stats = Ranker.stats ranker;
    engine_stats = Cag_engine.stats engine;
    correlation_time;
    peak_memory_proxy = !peak;
    memory_bytes_estimate = !peak * bytes_per_record;
  }

let correlate cfg collection = correlate_stream cfg collection ~on_path:(fun _ -> ())
