(** A probabilistic black-box baseline: Project5/WAP5-style nesting.

    The paper positions PreciseTracer against offline statistical
    correlators (Project5's nesting algorithm, WAP5) that infer causal
    paths from message timestamps at {e process} granularity and accept
    imprecision. This module implements that class of algorithm so the
    repository can measure the accuracy gap the paper claims (extension
    ext-1 in DESIGN.md):

    - activities from all nodes are merged by raw local timestamps (the
      baseline trusts clocks; skew degrades it);
    - context is coarsened to (host, program, pid) — thread identity is
      assumed unavailable, as in library-interposition tracing;
    - each outgoing message from an entity is attributed to that entity's
      most recently active open request (LIFO nesting), which is exact
      for sequential entities and guesses under concurrency.

    Derived paths use the same visit representation as {!Accuracy}, so
    both tracers are scored by the same oracle (at pid granularity for
    the baseline, since it cannot see tids). *)

type path = {
  entry_ts : Simnet.Sim_time.t;
  visits : Trace.Ground_truth.visit list;
      (** Context intervals with [tid = pid]: pid-granularity visits. *)
}

val infer : Trace.Log.collection -> path list
(** Reconstruct causal paths from a BEGIN/END-transformed collection
    (apply {!Transform} first). Only completed paths are returned. *)

val score :
  ?tolerance:Simnet.Sim_time.span ->
  ground_truth:Trace.Ground_truth.t ->
  path list ->
  Accuracy.verdict
(** Accuracy against the oracle, with the oracle's visits coarsened to pid
    granularity (consecutive same-pid visits merged). *)
