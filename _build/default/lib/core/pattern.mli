(** Causal path patterns: classifying CAGs by shape (§3.2).

    Two CAGs belong to the same pattern when they are isomorphic — same
    graph shape with corresponding vertices of the same activity type and
    the same context information (host and program; pids/tids, sizes and
    timestamps are abstracted away). Because the engine adds vertices in
    causal order, a canonical signature can be computed positionally: the
    per-vertex list of (kind, host, program, labelled parent positions). *)

type t = {
  signature : string;  (** Canonical form; equal iff isomorphic. *)
  name : string;
      (** Human-readable tier route along the critical path, e.g.
          ["httpd>java>mysqld>java>mysqld>java>httpd"]. *)
  cags : Cag.t list;  (** Members, in input order. *)
}

val count : t -> int

val signature_of : Cag.t -> string

val name_of : Cag.t -> string
(** Program route along the critical path (entity changes only). For
    unfinished CAGs, the route over all vertices in order. *)

val classify : Cag.t list -> t list
(** Group by signature; patterns ordered by descending population, ties by
    signature. *)

val pp : Format.formatter -> t -> unit
