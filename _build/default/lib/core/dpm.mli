(** A DPM-style baseline: pairwise message causality graphs (ext-7).

    DPM (Miller, 1988) — the earliest black-box tracer the paper cites —
    instruments the kernel and tracks causality {e between pairs of
    messages}: an incoming message to an entity is linked to the next
    outgoing message(s) of that entity, and paths are whatever the
    resulting graph contains. The paper's critique (via Project5): "the
    existence of a path in the resulting graph does not necessarily mean
    that any real causal path followed all of those edges in that
    sequence".

    This module reproduces that behaviour so the critique can be
    quantified: build the pairwise graph from a trace, enumerate its
    entry-to-exit paths, and measure how many are real (match an oracle
    request) versus phantom (an artefact of overlapped requests sharing an
    entity). *)

type t

val build : Trace.Log.collection -> t
(** Build the pairwise causality graph from a BEGIN/END-transformed
    collection. Each entity's incoming message is linked to every outgoing
    message that follows it (until the entity's next incoming message) —
    DPM's kernel-level pairing, at thread granularity. *)

val edge_count : t -> int
val message_count : t -> int

type path_stats = {
  paths_found : int;  (** Entry-to-exit paths enumerated (capped). *)
  real_paths : int;  (** Paths matching an oracle request (pid-level). *)
  phantom_paths : int;  (** Paths no request ever followed. *)
  truncated : bool;  (** Enumeration hit the cap (graph blow-up). *)
}

val evaluate :
  ?max_paths:int ->
  ?tolerance:Simnet.Sim_time.span ->
  ground_truth:Trace.Ground_truth.t ->
  t ->
  path_stats
(** Enumerate paths from BEGIN messages to END messages (default cap
    10 000) and classify each against the oracle with {!Accuracy}'s visit
    matching at thread granularity. Under concurrency the pairwise graph
    conflates overlapping requests, producing phantom paths — the
    imprecision PreciseTracer eliminates. *)
