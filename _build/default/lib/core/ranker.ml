module Activity = Trace.Activity
module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

type stream = {
  host : string;
  mutable items : Activity.t array;
  mutable len : int;
  mutable cursor : int;
  mutable closed : bool;
  mutable last_ts : Sim_time.t;
}

type stats = {
  fetched : int;
  candidates : int;
  noise_discarded : int;
  promotions : int;
  forced_fetches : int;
  forced_discards : int;
  peak_buffered : int;
}

type ablation = { disable_rule1 : bool; disable_promotion : bool }

let no_ablation = { disable_rule1 = false; disable_promotion = false }

type t = {
  window : Sim_time.span;
  skew_allowance : Sim_time.span;
  ablation : ablation;
  streams : stream array;  (* one per node log *)
  queues : Activity.t Deque.t array;  (* parallel to [streams] *)
  buffered_sends : (int * int) Address.Flow_table.t;
      (* flow -> (buffered SEND count, home queue index): every SEND of a
         flow originates on one node, so lookups and promotion searches can
         target exactly that queue. *)
  has_mmap_send : Address.flow -> bool;
  mutable buffered : int;
  mutable fetched : int;
  mutable candidates : int;
  mutable noise_discarded : int;
  mutable promotions : int;
  mutable forced_fetches : int;
  mutable forced_discards : int;
  mutable peak_buffered : int;
  mutable force_step : Sim_time.span;
      (* Current deferred-noise fetch increment; doubles while consecutive
         force-fetches fail to surface a candidate, resets on success. *)
}

let make ~window ~skew_allowance ~ablation ~has_mmap_send streams =
  if Sim_time.span_ns window <= 0 then invalid_arg "Ranker.create: window must be positive";
  {
    window;
    skew_allowance;
    ablation;
    streams;
    queues = Array.map (fun (_ : stream) -> Deque.create ()) streams;
    buffered_sends = Address.Flow_table.create 256;
    has_mmap_send;
    buffered = 0;
    fetched = 0;
    candidates = 0;
    noise_discarded = 0;
    promotions = 0;
    forced_fetches = 0;
    forced_discards = 0;
    peak_buffered = 0;
    force_step = window;
  }

let create ~window ?(skew_allowance = Sim_time.sec 1) ?(ablation = no_ablation)
    ~has_mmap_send collection =
  let streams =
    Array.of_list
      (List.map
         (fun log ->
           let items = Array.of_list (Trace.Log.to_list log) in
           {
             host = Trace.Log.hostname log;
             items;
             len = Array.length items;
             cursor = 0;
             closed = true;
             last_ts =
               (match Array.length items with
               | 0 -> Sim_time.zero
               | n -> items.(n - 1).Activity.timestamp);
           })
         collection)
  in
  make ~window ~skew_allowance ~ablation ~has_mmap_send streams

let create_online ~window ?(skew_allowance = Sim_time.sec 1) ?(ablation = no_ablation)
    ~has_mmap_send ~hosts () =
  let streams =
    Array.of_list
      (List.map
         (fun host ->
           { host; items = [||]; len = 0; cursor = 0; closed = false; last_ts = Sim_time.zero })
         hosts)
  in
  make ~window ~skew_allowance ~ablation ~has_mmap_send streams

let feed t (a : Activity.t) =
  let host = a.context.host in
  let stream =
    match Array.find_opt (fun s -> String.equal s.host host) t.streams with
    | Some s -> s
    | None -> invalid_arg ("Ranker.feed: unknown host " ^ host)
  in
  if stream.closed then invalid_arg "Ranker.feed: stream closed";
  if stream.len > 0 && Sim_time.(a.timestamp < stream.last_ts) then
    invalid_arg "Ranker.feed: timestamp regression";
  if stream.len = Array.length stream.items then begin
    let ncap = max 64 (2 * Array.length stream.items) in
    let nitems = Array.make ncap a in
    Array.blit stream.items 0 nitems 0 stream.len;
    stream.items <- nitems
  end;
  stream.items.(stream.len) <- a;
  stream.len <- stream.len + 1;
  stream.last_ts <- a.timestamp

let close_input t = Array.iter (fun s -> s.closed <- true) t.streams

let buffered_send_count t flow =
  match Address.Flow_table.find_opt t.buffered_sends flow with
  | Some (n, _) -> n
  | None -> 0

let count_send t i (a : Activity.t) delta =
  match a.kind with
  | Activity.Send ->
      let flow = a.message.flow in
      let n = buffered_send_count t flow in
      let n' = n + delta in
      if n' <= 0 then Address.Flow_table.remove t.buffered_sends flow
      else Address.Flow_table.replace t.buffered_sends flow (n', i)
  | Activity.Begin | Activity.End_ | Activity.Receive -> ()

let push t i a =
  Deque.push_back t.queues.(i) a;
  count_send t i a 1;
  t.buffered <- t.buffered + 1;
  t.fetched <- t.fetched + 1;
  if t.buffered > t.peak_buffered then t.peak_buffered <- t.buffered

let pop t i =
  let a = Deque.pop_front t.queues.(i) in
  count_send t i a (-1);
  t.buffered <- t.buffered - 1;
  a

(* Pull every stream item with timestamp <= deadline into its queue. *)
let fetch_until t deadline =
  Array.iteri
    (fun i s ->
      while
        s.cursor < s.len && Sim_time.(s.items.(s.cursor).Activity.timestamp <= deadline)
      do
        push t i s.items.(s.cursor);
        s.cursor <- s.cursor + 1
      done)
    t.streams

(* Minimum local timestamp among queue heads and unfetched stream fronts:
   the sliding window's left edge. *)
let window_min t =
  let mins = ref None in
  let consider ts = match !mins with None -> mins := Some ts | Some m -> mins := Some (Sim_time.min m ts) in
  Array.iter
    (fun q ->
      match Deque.peek_front q with
      | Some a -> consider a.Activity.timestamp
      | None -> ())
    t.queues;
  Array.iter
    (fun s -> if s.cursor < s.len then consider s.items.(s.cursor).Activity.timestamp)
    t.streams;
  !mins

let refill t =
  match window_min t with
  | None -> ()
  | Some m -> fetch_until t (Sim_time.add m t.window)

(* Indices of non-empty queues, with their head activities. *)
let heads t =
  let acc = ref [] in
  for i = Array.length t.queues - 1 downto 0 do
    match Deque.peek_front t.queues.(i) with
    | Some a -> acc := (i, a) :: !acc
    | None -> ()
  done;
  !acc

let head_receive_matching_mmap t hs =
  let eligible =
    List.filter
      (fun (_, (a : Activity.t)) ->
        Activity.equal_kind a.kind Activity.Receive && t.has_mmap_send a.message.flow)
      hs
  in
  match eligible with
  | [] -> None
  | hs ->
      (* Deterministic choice: earliest local timestamp, then queue index. *)
      Some
        (List.fold_left
           (fun ((_, (best : Activity.t)) as b) ((_, (a : Activity.t)) as c) ->
             if Sim_time.(a.timestamp < best.timestamp) then c else b)
           (List.hd hs) (List.tl hs))

let lowest_priority_non_receive hs =
  let non_receive =
    List.filter (fun (_, (a : Activity.t)) -> not (Activity.equal_kind a.kind Activity.Receive)) hs
  in
  match non_receive with
  | [] -> None
  | hs ->
      Some
        (List.fold_left
           (fun ((_, (best : Activity.t)) as b) ((_, (a : Activity.t)) as c) ->
             let pa = Activity.kind_priority a.kind and pb = Activity.kind_priority best.kind in
             if pa < pb || (pa = pb && Sim_time.(a.timestamp < best.timestamp)) then c else b)
           (List.hd hs) (List.tl hs))

(* Concurrency disturbance: every head is a RECEIVE, but some head's
   matching SEND sits deeper in a queue. Promote the buried SEND to its
   queue's front so Rule 2 can emit it next round — but never across an
   earlier activity of the SEND's own execution entity, which would break
   adjacent-context order (the paper's swap only ever jumps another
   CPU's activities). *)
let try_promote t hs =
  let matching_send flow (x : Activity.t) =
    Activity.equal_kind x.kind Activity.Send && Address.flow_equal x.message.flow flow
  in
  let promotable q i =
    let send_ctx = (Deque.get q i).Activity.context in
    let rec clear j =
      j >= i || ((not (Activity.equal_context (Deque.get q j).Activity.context send_ctx)) && clear (j + 1))
    in
    clear 0
  in
  let promote_for (_, (r : Activity.t)) =
    let flow = r.message.flow in
    match Address.Flow_table.find_opt t.buffered_sends flow with
    | Some (n, qi) when n > 0 -> (
        let q = t.queues.(qi) in
        match Deque.find_index q (matching_send flow) with
        | Some i when i > 0 && promotable q i ->
            Deque.promote q i;
            t.promotions <- t.promotions + 1;
            true
        | Some _ | None -> false)
    | Some _ | None -> false
  in
  List.exists promote_for hs

(* Deferred noise check: before declaring the earliest suspect RECEIVE
   noise, make sure its matching SEND is not merely outside the fetched
   region — pull input up to [skew_allowance] past the suspect first. *)
let try_force_fetch t hs =
  let earliest =
    List.fold_left
      (fun (best : Activity.t) (_, (a : Activity.t)) ->
        if Sim_time.(a.timestamp < best.timestamp) then a else best)
      (snd (List.hd hs))
      (List.tl hs)
  in
  let target = Sim_time.add earliest.timestamp t.skew_allowance in
  let next_fetchable =
    Array.fold_left
      (fun acc s ->
        if s.cursor < s.len then
          let ts = s.items.(s.cursor).Activity.timestamp in
          match acc with None -> Some ts | Some m -> Some (Sim_time.min m ts)
        else acc)
      None t.streams
  in
  match next_fetchable with
  | Some ts when Sim_time.(ts <= target) ->
      (* Fetch an escalating slice: window-sized at first (cheap when the
         missing SEND is just past the window edge), doubling while the
         search keeps failing so a noise-heavy trace costs O(log allowance)
         extensions per suspect rather than O(allowance / window). *)
      fetch_until t (Sim_time.min target (Sim_time.add ts t.force_step));
      let doubled = Sim_time.span_add t.force_step t.force_step in
      if Sim_time.compare_span doubled t.skew_allowance <= 0 then t.force_step <- doubled
      else t.force_step <- t.skew_allowance;
      t.forced_fetches <- t.forced_fetches + 1;
      true
  | Some _ | None -> false

type step = Candidate of Activity.t | Need_input | Exhausted

(* Popping candidate [a] commits to its position in the causal order; with
   live input this is only safe once every still-open stream that has
   nothing buffered has reported past [a.ts + skew_allowance] - no future
   activity can then belong before [a]. Closed streams and streams with
   buffered or fetched-but-unranked data behave exactly as offline. *)
let safe_to_pop t (a : Activity.t) =
  let horizon = Sim_time.add a.Activity.timestamp t.skew_allowance in
  let ok = ref true in
  Array.iteri
    (fun i s ->
      if
        (not s.closed)
        && Deque.is_empty t.queues.(i)
        && s.cursor >= s.len
        && Sim_time.(s.last_ts < horizon)
      then ok := false)
    t.streams;
  !ok

let fully_consumed t =
  Array.for_all (fun s -> s.closed && s.cursor >= s.len) t.streams

(* Declaring [suspect] noise requires knowing nothing relevant is still on
   the wire: every open stream must have reported past the allowance. *)
let noise_decidable t (suspect : Activity.t) =
  let target = Sim_time.add suspect.Activity.timestamp t.skew_allowance in
  Array.for_all (fun s -> s.closed || Sim_time.(s.last_ts >= target)) t.streams

let rec rank_step t =
  refill t;
  match heads t with
  | [] -> if fully_consumed t then Exhausted else Need_input
  | hs -> (
      match (if t.ablation.disable_rule1 then None else head_receive_matching_mmap t hs) with
      | Some (i, a) ->
          if safe_to_pop t a then begin
            t.candidates <- t.candidates + 1;
            t.force_step <- t.window;
            Candidate (pop t i)
          end
          else Need_input
      | None -> (
          match lowest_priority_non_receive hs with
          | Some (i, a) ->
              if safe_to_pop t a then begin
                t.candidates <- t.candidates + 1;
                t.force_step <- t.window;
                Candidate (pop t i)
              end
              else Need_input
          | None ->
              (* Every head is an unmatched RECEIVE. *)
              if (not t.ablation.disable_promotion) && try_promote t hs then rank_step t
              else if try_force_fetch t hs then rank_step t
              else begin
                (* is_noise: no matching SEND in mmap nor anywhere in the
                   buffer, with the input fetched well past the suspect.
                   Heads whose matching SEND is buffered but unpromotable
                   are not noise; discarding one of those (only possible
                   under adversarial interleavings) is counted separately
                   and asserted zero in tests. *)
                let no_buffered_send (_, (a : Activity.t)) =
                  buffered_send_count t a.message.flow = 0
                in
                let pool, forced =
                  match List.filter no_buffered_send hs with
                  | [] -> (hs, true)
                  | noise_heads -> (noise_heads, false)
                in
                let i, suspect =
                  List.fold_left
                    (fun ((_, (best : Activity.t)) as b) ((_, (a : Activity.t)) as c) ->
                      if Sim_time.(a.timestamp < best.timestamp) then c else b)
                    (List.hd pool) (List.tl pool)
                in
                if not (noise_decidable t suspect) then Need_input
                else begin
                  ignore (pop t i);
                  t.noise_discarded <- t.noise_discarded + 1;
                  if forced then t.forced_discards <- t.forced_discards + 1;
                  rank_step t
                end
              end))

let rank t =
  match rank_step t with Candidate a -> Some a | Need_input | Exhausted -> None

let buffered t = t.buffered

let stats t =
  {
    fetched = t.fetched;
    candidates = t.candidates;
    noise_discarded = t.noise_discarded;
    promotions = t.promotions;
    forced_fetches = t.forced_fetches;
    forced_discards = t.forced_discards;
    peak_buffered = t.peak_buffered;
  }
