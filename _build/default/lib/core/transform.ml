module Activity = Trace.Activity
module Address = Simnet.Address

type config = {
  entry_points : Address.endpoint list;
  drop_programs : string list;
  drop_ports : int list;
  keep : Activity.t -> bool;
}

let config ~entry_points ?(drop_programs = []) ?(drop_ports = []) ?(keep = fun _ -> true) () =
  { entry_points; drop_programs; drop_ports; keep }

let is_entry cfg ep = List.exists (Address.endpoint_equal ep) cfg.entry_points

let filtered_out cfg (a : Activity.t) =
  List.exists (String.equal a.context.program) cfg.drop_programs
  || List.exists
       (fun p -> a.message.flow.src.port = p || a.message.flow.dst.port = p)
       cfg.drop_ports
  || not (cfg.keep a)

let classify cfg (a : Activity.t) =
  if filtered_out cfg a then None
  else
    let kind =
      match a.kind with
      | Activity.Receive when is_entry cfg a.message.flow.dst -> Activity.Begin
      | Activity.Send when is_entry cfg a.message.flow.src -> Activity.End_
      | k -> k
    in
    Some { a with kind }

let apply cfg collection = Trace.Log.map_activities (classify cfg) collection
