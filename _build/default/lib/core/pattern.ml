module Activity = Trace.Activity

type t = { signature : string; name : string; cags : Cag.t list }

let count t = List.length t.cags

let signature_of cag =
  let vertices = Cag.vertices cag in
  let position = Hashtbl.create 16 in
  List.iteri (fun i (v : Cag.vertex) -> Hashtbl.replace position v.Cag.vid i) vertices;
  let buf = Buffer.create 256 in
  List.iter
    (fun (v : Cag.vertex) ->
      let a = v.Cag.activity in
      Buffer.add_string buf (Activity.kind_to_string a.Activity.kind);
      Buffer.add_char buf '/';
      Buffer.add_string buf a.context.host;
      Buffer.add_char buf '/';
      Buffer.add_string buf a.context.program;
      let parents =
        List.map
          (fun (kind, (p : Cag.vertex)) ->
            let tag = match kind with Cag.Context_edge -> 'c' | Cag.Message_edge -> 'm' in
            (tag, Hashtbl.find position p.Cag.vid))
          v.Cag.parents
        |> List.sort compare
      in
      List.iter (fun (tag, i) -> Buffer.add_string buf (Printf.sprintf "<%c%d" tag i)) parents;
      Buffer.add_char buf ';')
    vertices;
  Buffer.contents buf

let route programs =
  let rec dedup = function
    | a :: (b :: _ as rest) when String.equal a b -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  String.concat ">" (dedup programs)

let name_of cag =
  if Cag.is_finished cag then
    let hops = Latency.critical_path cag in
    match hops with
    | [] -> (Cag.root cag).Cag.activity.Activity.context.program
    | first :: _ ->
        route
          (first.Latency.parent.Cag.activity.Activity.context.program
          :: List.map (fun h -> h.Latency.child.Cag.activity.Activity.context.program) hops)
  else
    route
      (List.map (fun (v : Cag.vertex) -> v.Cag.activity.Activity.context.program) (Cag.vertices cag))

let classify cags =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun cag ->
      let signature = signature_of cag in
      match Hashtbl.find_opt table signature with
      | Some members -> members := cag :: !members
      | None ->
          Hashtbl.replace table signature (ref [ cag ]);
          order := signature :: !order)
    cags;
  let patterns =
    List.rev_map
      (fun signature ->
        let members = List.rev !(Hashtbl.find table signature) in
        { signature; name = name_of (List.hd members); cags = members })
      !order
  in
  List.sort
    (fun a b ->
      match Int.compare (count b) (count a) with
      | 0 -> String.compare a.signature b.signature
      | c -> c)
    patterns

let pp ppf t =
  Format.fprintf ppf "pattern %s: %d path%s" t.name (count t)
    (if count t = 1 then "" else "s")
