(** The ranker: choosing candidate activities for CAG composition (§4.1).

    Activities logged on different nodes are fetched into per-node queues
    whenever their local timestamps fall inside a sliding time window. The
    ranker only ever compares the {e head} activities of the queues and
    picks the next candidate by the paper's two rules:

    - {b Rule 1}: a head RECEIVE whose matching SEND is already in the
      engine's [mmap] is the candidate — its message parent has been
      delivered, so it can be correlated immediately.
    - {b Rule 2}: otherwise the head with the lowest type priority
      (BEGIN < SEND < END < RECEIVE) is the candidate, which guarantees a
      SEND always precedes its matched RECEIVE.

    Two disturbances are handled (§4.3): {e concurrency disturbance}, where
    every head is a RECEIVE blocking the others' matched SENDs deeper in
    the queues — resolved by promoting a buffered matching SEND to its
    queue's front (the paper's head swap, generalised to any depth); and
    {e noise}, a RECEIVE with no matching SEND in the [mmap] {e or} the
    buffer — discarded, but only after fetching ahead up to
    [skew_allowance] so that clock skew between nodes can never
    misclassify live traffic as noise (DESIGN.md clarification #3). *)

type t

type stats = {
  fetched : int;  (** Activities pulled into the buffer. *)
  candidates : int;  (** Activities returned by [rank]. *)
  noise_discarded : int;  (** RECEIVEs dropped by the [is_noise] check. *)
  promotions : int;  (** Concurrency-disturbance head swaps. *)
  forced_fetches : int;  (** Window extensions for deferred noise checks. *)
  forced_discards : int;
      (** Discards of a RECEIVE whose matching SEND was buffered but
          unpromotable — expected to be zero; a non-zero value flags an
          interleaving outside the algorithm's assumptions. *)
  peak_buffered : int;  (** High-water mark of buffered activities. *)
}

type ablation = { disable_rule1 : bool; disable_promotion : bool }
(** Switch off individual mechanisms to measure what they buy (the
    ablation benches of DESIGN.md). Without Rule 1, matched receives wait
    behind the priority order; without promotion, concurrency disturbances
    must resolve through forced discards — both degrade accuracy, which is
    the point. *)

val no_ablation : ablation

val create :
  window:Simnet.Sim_time.span ->
  ?skew_allowance:Simnet.Sim_time.span ->
  ?ablation:ablation ->
  has_mmap_send:(Simnet.Address.flow -> bool) ->
  Trace.Log.collection ->
  t
(** [window] is the sliding-window size (any positive span; accuracy is
    independent of it, cost is not). [skew_allowance] bounds how far ahead
    of a suspect RECEIVE the ranker will look before declaring it noise;
    it must exceed the largest cross-node clock skew (default 1 s, twice
    the paper's largest evaluated skew). [has_mmap_send] is wired to the
    engine's message-relation index. *)

val rank : t -> Trace.Activity.t option
(** The next candidate, or [None] when all input is consumed. (For rankers
    with open input, [None] can also mean "need more input" — use
    {!rank_step} to distinguish.) *)

(** {1 Live operation}

    A ranker can also be driven online, as traces stream in from the
    cluster: create it with the node list, [feed] activities as the probe
    reports them, and pull candidates with {!rank_step}. Candidates are
    withheld until enough input has arrived that no later-fed activity
    could precede them (each stream's feed watermark must pass the
    candidate's timestamp plus the skew allowance), so online results
    match the offline run on the same trace exactly. *)

val create_online :
  window:Simnet.Sim_time.span ->
  ?skew_allowance:Simnet.Sim_time.span ->
  ?ablation:ablation ->
  has_mmap_send:(Simnet.Address.flow -> bool) ->
  hosts:string list ->
  unit ->
  t

val feed : t -> Trace.Activity.t -> unit
(** Append one activity to its host's stream. Activities of one host must
    arrive in non-decreasing timestamp order.
    @raise Invalid_argument on an unknown host, a closed stream, or a
    timestamp regression. *)

val close_input : t -> unit
(** No more activities will be fed; pending candidates become decidable. *)

type step =
  | Candidate of Trace.Activity.t
  | Need_input  (** Undecidable until more input is fed (or input closed). *)
  | Exhausted  (** All input consumed. *)

val rank_step : t -> step

val buffered : t -> int
(** Activities currently held in the ranker's queues. *)

val stats : t -> stats
