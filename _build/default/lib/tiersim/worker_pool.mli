(** Bounded pools of execution entities serving connections.

    Covers the concurrency patterns of the paper's target services (the
    Stevens catalogue collapses, for tracing purposes, onto these):

    - a {e prefork} web server: one process per connection, up to a limit;
    - a {e thread-per-connection} app server: JBoss's connector, whose
      [MaxThreads] knob (default 40 in the paper) is exactly this pool's
      capacity — connections beyond it wait in the accept queue;
    - a thread-per-connection database with ample threads.

    Workers are {e recycled}: a released worker keeps its pid/tid and
    serves the next connection, which is what creates the thread-reuse
    hazard the correlation engine's same-CAG check guards against. *)

type 'job t
(** A pool whose queued jobs have type ['job] (typically {!Simnet.Tcp.socket}). *)

type identity = Processes | Threads
(** Whether workers are separate processes (own pid) or kernel threads of
    one server process (shared pid, own tid). *)

val create :
  node:Simnet.Node.t ->
  program:string ->
  capacity:int ->
  identity:identity ->
  serve:(Simnet.Proc.t -> 'job -> release:(unit -> unit) -> unit) ->
  'job t
(** Worker identities are created lazily, up to [capacity], and recycled
    thereafter. [serve] runs a worker on a job and must call [release]
    exactly once when done; the worker then takes the oldest queued job,
    if any. *)

val dispatch : 'job t -> 'job -> unit
(** Assign a worker to [job], or queue the job FIFO if all [capacity]
    workers are busy. *)

val busy : 'a t -> int
val queued : 'a t -> int
val peak_queued : 'a t -> int
val total_served : 'a t -> int
