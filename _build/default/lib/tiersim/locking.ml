module Engine = Simnet.Engine
module Sim_time = Simnet.Sim_time

type t = {
  engine : Engine.t;
  mutable held : bool;
  waiters : (unit -> unit) Queue.t;
  mutable peak : int;
}

let create ~engine = { engine; held = false; waiters = Queue.create (); peak = 0 }

let acquire t k =
  if t.held then begin
    Queue.push k t.waiters;
    if Queue.length t.waiters > t.peak then t.peak <- Queue.length t.waiters
  end
  else begin
    t.held <- true;
    k ()
  end

let release t =
  if not t.held then invalid_arg "Locking.release: not held";
  if Queue.is_empty t.waiters then t.held <- false
  else
    let next = Queue.pop t.waiters in
    (* Hand off asynchronously so release never reenters the caller. *)
    ignore (Engine.schedule_after t.engine ~delay:Sim_time.span_zero next)

let with_lock t ~critical = acquire t (fun () -> critical (fun () -> release t))
let waiting t = Queue.length t.waiters
let peak_waiting t = t.peak
