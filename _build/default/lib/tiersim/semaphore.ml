module Engine = Simnet.Engine
module Sim_time = Simnet.Sim_time

type t = {
  engine : Engine.t;
  capacity : int;
  mutable used : int;
  waiters : (unit -> unit) Queue.t;
  mutable peak : int;
}

let create ~engine ~capacity =
  assert (capacity > 0);
  { engine; capacity; used = 0; waiters = Queue.create (); peak = 0 }

let acquire t k =
  if t.used < t.capacity then begin
    t.used <- t.used + 1;
    k ()
  end
  else begin
    Queue.push k t.waiters;
    if Queue.length t.waiters > t.peak then t.peak <- Queue.length t.waiters
  end

let release t =
  if t.used <= 0 then invalid_arg "Semaphore.release: nothing held";
  match Queue.take_opt t.waiters with
  | Some next ->
      (* Slot passes directly to the next waiter, asynchronously. *)
      ignore (Engine.schedule_after t.engine ~delay:Sim_time.span_zero next)
  | None -> t.used <- t.used - 1

let in_use t = t.used
let waiting t = Queue.length t.waiters
let peak_waiting t = t.peak
