module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time

type db_query = {
  query_size : int;
  result_size : int;
  db_cpu : Sim_time.span;
  locks_items : bool;
}

type plan = {
  id : int;
  kind : string;
  request_size : int;
  httpd_parse_cpu : Sim_time.span;
  app_request_size : int;
  app_cpu_pre : Sim_time.span;
  queries : db_query list;
  app_cpu_per_query : Sim_time.span;
  app_cpu_post : Sim_time.span;
  app_response_size : int;
  httpd_respond_cpu : Sim_time.span;
  response_size : int;
}

type mix = Browse_only | Default

let mix_to_string = function Browse_only -> "Browse_only" | Default -> "Default"

let mix_of_string = function
  | "Browse_only" -> Some Browse_only
  | "Default" -> Some Default
  | _ -> None

(* Per-class templates. CPU costs are calibrated so the simulated cluster
   saturates where the paper's does (~800 clients, app tier first): per
   request roughly 10 ms of web-tier CPU, 8 ms of app-tier CPU and 2.5 ms
   of database CPU per query, on 2-core nodes. *)
type template = {
  t_kind : string;
  t_queries : (int * int * int (* us of db cpu *) * bool) list;
  t_app_response : int;
  t_is_write : bool;
}

let templates =
  [
    { t_kind = "ViewItem";
      t_queries = [ (250, 4096, 2500, true); (220, 3072, 2000, false) ];
      t_app_response = 16_384; t_is_write = false };
    { t_kind = "SearchItemsByCategory";
      t_queries = [ (300, 24_576, 5000, true) ];
      t_app_response = 26_000; t_is_write = false };
    { t_kind = "SearchItemsByRegion";
      t_queries = [ (320, 18_432, 4500, true) ];
      t_app_response = 20_000; t_is_write = false };
    { t_kind = "ViewBidHistory";
      t_queries = [ (260, 2048, 1800, false); (240, 4096, 2200, false) ];
      t_app_response = 8192; t_is_write = false };
    { t_kind = "ViewUserInfo";
      t_queries = [ (240, 6144, 2200, false) ];
      t_app_response = 9000; t_is_write = false };
    { t_kind = "BrowseCategories";
      t_queries = [ (200, 2048, 1200, false) ];
      t_app_response = 4096; t_is_write = false };
    { t_kind = "BrowseRegions";
      t_queries = [ (200, 2048, 1200, false) ];
      t_app_response = 4096; t_is_write = false };
    { t_kind = "PutBid";
      t_queries = [ (250, 1024, 1500, true); (260, 512, 1800, true); (240, 512, 1500, false) ];
      t_app_response = 6144; t_is_write = true };
    { t_kind = "StoreBid";
      t_queries = [ (280, 512, 2000, true); (260, 512, 1800, true) ];
      t_app_response = 4096; t_is_write = true };
    { t_kind = "PutComment";
      t_queries = [ (250, 1024, 1500, false); (250, 512, 1500, false) ];
      t_app_response = 6144; t_is_write = true };
    { t_kind = "RegisterUser";
      t_queries = [ (300, 512, 2000, false); (280, 512, 1800, false) ];
      t_app_response = 5120; t_is_write = true };
  ]

let browse_weights =
  [ ("ViewItem", 0.28); ("SearchItemsByCategory", 0.22); ("SearchItemsByRegion", 0.10);
    ("ViewBidHistory", 0.08); ("ViewUserInfo", 0.12); ("BrowseCategories", 0.12);
    ("BrowseRegions", 0.08) ]

let default_weights =
  browse_weights
  |> List.map (fun (k, w) -> (k, w *. 0.85))
  |> fun reads ->
  reads @ [ ("PutBid", 0.05); ("StoreBid", 0.04); ("PutComment", 0.03); ("RegisterUser", 0.03) ]

let class_names = function Browse_only -> browse_weights | Default -> default_weights

let template_of kind =
  match List.find_opt (fun t -> String.equal t.t_kind kind) templates with
  | Some t -> t
  | None -> invalid_arg ("Workload.template_of: unknown class " ^ kind)

let jitter rng span = Rng.positive_normal_span rng ~mean:span ~rel_std:0.20
let jitter_size rng size =
  max 64 (Sim_time.span_ns (Rng.positive_normal_span rng ~mean:(Sim_time.ns size) ~rel_std:0.15))

let instantiate rng ~id template =
  let queries =
    List.map
      (fun (qs, rs, cpu_us, locks) ->
        {
          query_size = jitter_size rng qs;
          result_size = jitter_size rng rs;
          db_cpu = jitter rng (Sim_time.us cpu_us);
          locks_items = locks;
        })
      template.t_queries
  in
  let app_response_size = jitter_size rng template.t_app_response in
  let response_size = app_response_size + 1200 (* headers the web tier adds *) in
  {
    id;
    kind = template.t_kind;
    request_size = jitter_size rng 450;
    httpd_parse_cpu = jitter rng (Sim_time.us 4000);
    app_request_size = jitter_size rng 550;
    app_cpu_pre = jitter rng (Sim_time.us 3000);
    queries;
    app_cpu_per_query = jitter rng (Sim_time.us 1500);
    app_cpu_post = jitter rng (Sim_time.us 2000);
    app_response_size;
    httpd_respond_cpu =
      jitter rng (Sim_time.us (3000 + (150 * app_response_size / 1024)));
    response_size;
  }

let sample rng mix ~id =
  let kind = Rng.weighted rng (class_names mix) in
  instantiate rng ~id (template_of kind)

let sample_kind rng ~kind ~id = instantiate rng ~id (template_of kind)

let mean_think = Sim_time.ms 4500
let think_time rng = Rng.exponential_span rng ~mean:mean_think
