(** RUBiS-like workload generation.

    A request is described by a {!plan}: everything each tier must do to
    service it — CPU costs, database queries, message sizes. The plan
    rides the messages as application payload (see {!Simnet.Messaging}),
    standing in for the HTTP parameters and SQL strings a real RUBiS
    deployment would parse; the tracer never sees it.

    Request classes model the RUBiS auction site's browse and bid
    interactions; the two mixes follow the paper's §5.1: [Browse_only]
    (read only) and [Default] (read/write, ~15% writes). *)

type db_query = {
  query_size : int;  (** Bytes, app server -> database. *)
  result_size : int;  (** Bytes, database -> app server. *)
  db_cpu : Simnet.Sim_time.span;
  locks_items : bool;  (** Touches the [items] table (Database_Lock fault). *)
}

type plan = {
  id : int;  (** Globally unique request ID (the oracle's tag). *)
  kind : string;  (** Request class name, e.g. ["ViewItem"]. *)
  request_size : int;  (** Client -> web server. *)
  httpd_parse_cpu : Simnet.Sim_time.span;
  app_request_size : int;  (** Web server -> app server. *)
  app_cpu_pre : Simnet.Sim_time.span;
  queries : db_query list;
  app_cpu_per_query : Simnet.Sim_time.span;
  app_cpu_post : Simnet.Sim_time.span;
  app_response_size : int;  (** App server -> web server. *)
  httpd_respond_cpu : Simnet.Sim_time.span;
  response_size : int;  (** Web server -> client. *)
}

type mix = Browse_only | Default

val mix_to_string : mix -> string
val mix_of_string : string -> mix option

val class_names : mix -> (string * float) list
(** The classes of a mix with their sampling weights. *)

val sample : Simnet.Rng.t -> mix -> id:int -> plan
(** Draw a request: class by mix weight, then per-class costs and sizes
    with multiplicative jitter. *)

val sample_kind : Simnet.Rng.t -> kind:string -> id:int -> plan
(** Draw a request of a specific class (used by single-pattern
    experiments such as the paper's ViewItem analysis).
    @raise Invalid_argument on an unknown class. *)

val think_time : Simnet.Rng.t -> Simnet.Sim_time.span
(** Client think time: exponential with the RUBiS-style mean used
    throughout the evaluation (see {!Scenario}). *)

val mean_think : Simnet.Sim_time.span
