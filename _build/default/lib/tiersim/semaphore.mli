(** A counting semaphore with FIFO waiters.

    Models the web tier's bounded backend-connection pool (mod_jk style):
    at most [capacity] connections to the app server exist at once; workers
    needing one past that wait inside the web tier — which is why, at
    extreme load, the paper sees the [httpd2httpd] latency share rise while
    [httpd2java] recedes (§5.4.1, 700 -> 800 clients). *)

type t

val create : engine:Simnet.Engine.t -> capacity:int -> t

val acquire : t -> (unit -> unit) -> unit
(** Run the continuation once a slot is available (FIFO). *)

val release : t -> unit
(** @raise Invalid_argument if no slot is held. *)

val in_use : t -> int
val waiting : t -> int
val peak_waiting : t -> int
