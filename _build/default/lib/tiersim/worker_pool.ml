module Node = Simnet.Node
module Proc = Simnet.Proc

type identity = Processes | Threads

type 'job t = {
  node : Node.t;
  program : string;
  capacity : int;
  identity : identity;
  serve : Proc.t -> 'job -> release:(unit -> unit) -> unit;
  mutable main : Proc.t option;  (* parent process for thread workers *)
  idle : Proc.t Queue.t;
  mutable created : int;
  mutable busy : int;
  pending : 'job Queue.t;
  mutable peak_queued : int;
  mutable served : int;
}

let create ~node ~program ~capacity ~identity ~serve =
  assert (capacity > 0);
  {
    node;
    program;
    capacity;
    identity;
    serve;
    main = None;
    idle = Queue.create ();
    created = 0;
    busy = 0;
    pending = Queue.create ();
    peak_queued = 0;
    served = 0;
  }

let fresh_worker t =
  match t.identity with
  | Processes -> Node.spawn t.node ~program:t.program
  | Threads ->
      let main =
        match t.main with
        | Some m -> m
        | None ->
            let m = Node.spawn t.node ~program:t.program in
            t.main <- Some m;
            m
      in
      Node.spawn_thread t.node ~of_:main

let take_worker t =
  match Queue.take_opt t.idle with
  | Some proc -> Some proc
  | None ->
      if t.created < t.capacity then begin
        t.created <- t.created + 1;
        Some (fresh_worker t)
      end
      else None

let rec run t proc job =
  t.busy <- t.busy + 1;
  t.served <- t.served + 1;
  t.serve proc job ~release:(fun () ->
      t.busy <- t.busy - 1;
      match Queue.take_opt t.pending with
      | Some next -> run t proc next
      | None -> Queue.push proc t.idle)

let dispatch t job =
  match take_worker t with
  | Some proc -> run t proc job
  | None ->
      Queue.push job t.pending;
      if Queue.length t.pending > t.peak_queued then t.peak_queued <- Queue.length t.pending

let busy t = t.busy
let queued t = Queue.length t.pending
let peak_queued t = t.peak_queued
let total_served t = t.served
