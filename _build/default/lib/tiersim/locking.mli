(** A FIFO mutex for simulated resources.

    Models coarse database locks: the paper's Database_Lock fault locks
    RUBiS's [items] table, serialising every query that touches it. *)

type t

val create : engine:Simnet.Engine.t -> t

val acquire : t -> (unit -> unit) -> unit
(** [acquire t k] runs [k] once the lock is held — immediately if free,
    otherwise after all earlier waiters release. *)

val release : t -> unit
(** Release by the current holder; the next waiter (if any) is scheduled at
    the current instant.
    @raise Invalid_argument if the lock is not held. *)

val with_lock : t -> critical:((unit -> unit) -> unit) -> unit
(** [with_lock t ~critical] acquires, then calls [critical done_] where the
    critical section must call [done_] exactly once to release. *)

val waiting : t -> int
val peak_waiting : t -> int
