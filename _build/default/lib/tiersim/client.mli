(** Client emulators (the paper's "Client Emulator" nodes).

    Each emulated client owns one persistent connection to the web tier
    and runs a closed loop: think (exponential), send a request drawn from
    the workload mix, wait for the full response, repeat. Clients start
    staggered across the up-ramp and stop issuing at a deadline (the end
    of the down-ramp), then close their connections so the servers drain.

    Completions are recorded in the service's {!Metrics} and the oracle's
    request records are closed ({!Trace.Ground_truth.complete}). *)

type spec = {
  count : int;  (** Concurrent emulated clients. *)
  mix : Workload.mix;
  ramp_up : Simnet.Sim_time.span;  (** Client start times spread over this. *)
  stop_issuing_at : Simnet.Sim_time.t;  (** No new requests after this. *)
  only_kind : string option;
      (** Restrict every request to one class (e.g. ViewItem-only runs). *)
}

val start : Service.t -> spec -> unit
(** Install the emulators; traffic flows once the engine runs. *)
