lib/tiersim/faults.ml: Simnet
