lib/tiersim/worker_pool.mli: Simnet
