lib/tiersim/client.ml: Array Metrics Printf Service Simnet Trace Workload
