lib/tiersim/service.ml: Array Core Faults List Locking Metrics Option Printf Semaphore Simnet Trace Worker_pool Workload
