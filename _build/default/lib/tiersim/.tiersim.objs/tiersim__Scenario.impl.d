lib/tiersim/scenario.ml: Array Client Core Faults Metrics Service Simnet Trace Workload
