lib/tiersim/workload.ml: List Simnet String
