lib/tiersim/semaphore.mli: Simnet
