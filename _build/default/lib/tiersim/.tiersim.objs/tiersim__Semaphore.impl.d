lib/tiersim/semaphore.ml: Queue Simnet
