lib/tiersim/faults.mli: Simnet
