lib/tiersim/service.mli: Core Faults Metrics Simnet Trace Workload
