lib/tiersim/metrics.ml: Array Float Format List Option Simnet String
