lib/tiersim/metrics.mli: Format Simnet
