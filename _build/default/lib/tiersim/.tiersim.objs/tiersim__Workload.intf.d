lib/tiersim/workload.mli: Simnet
