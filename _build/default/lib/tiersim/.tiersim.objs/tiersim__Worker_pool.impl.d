lib/tiersim/worker_pool.ml: Queue Simnet
