lib/tiersim/client.mli: Service Simnet Workload
