lib/tiersim/locking.mli: Simnet
