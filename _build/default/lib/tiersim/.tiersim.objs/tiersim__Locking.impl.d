lib/tiersim/locking.ml: Queue Simnet
