lib/tiersim/scenario.mli: Core Faults Metrics Service Simnet Trace Workload
