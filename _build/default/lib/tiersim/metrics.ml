module Sim_time = Simnet.Sim_time

type sample = { finished_at : Sim_time.t; rt : Sim_time.span; kind : string }

type t = { mutable rev_samples : sample list; mutable count : int }

type summary = {
  completed : int;
  throughput_rps : float;
  mean_rt_s : float;
  p50_rt_s : float;
  p90_rt_s : float;
  p99_rt_s : float;
  max_rt_s : float;
}

let create () = { rev_samples = []; count = 0 }

let record t ~finished_at ~rt ~kind =
  t.rev_samples <- { finished_at; rt; kind } :: t.rev_samples;
  t.count <- t.count + 1

let total_recorded t = t.count

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) idx))

let bounds ?from_ts ?until_ts t =
  let lo = Option.value ~default:Sim_time.zero from_ts in
  let hi =
    match until_ts with
    | Some ts -> ts
    | None ->
        List.fold_left
          (fun acc s -> Sim_time.max acc s.finished_at)
          Sim_time.zero t.rev_samples
  in
  (lo, hi)

let summarize_filtered ?from_ts ?until_ts t ~keep =
  let lo, hi = bounds ?from_ts ?until_ts t in
  let samples =
    List.filter
      (fun s -> keep s && Sim_time.(s.finished_at >= lo) && Sim_time.(s.finished_at <= hi))
      t.rev_samples
  in
  let completed = List.length samples in
  let rts =
    Array.of_list (List.map (fun s -> Sim_time.span_to_float_s s.rt) samples)
  in
  Array.sort Float.compare rts;
  let interval = Sim_time.span_to_float_s (Sim_time.diff hi lo) in
  let mean =
    if completed = 0 then 0.0 else Array.fold_left ( +. ) 0.0 rts /. float_of_int completed
  in
  {
    completed;
    throughput_rps = (if interval <= 0.0 then 0.0 else float_of_int completed /. interval);
    mean_rt_s = mean;
    p50_rt_s = percentile rts 0.50;
    p90_rt_s = percentile rts 0.90;
    p99_rt_s = percentile rts 0.99;
    max_rt_s = (if completed = 0 then 0.0 else rts.(completed - 1));
  }

let summarize ?from_ts ?until_ts t = summarize_filtered ?from_ts ?until_ts t ~keep:(fun _ -> true)

let summarize_kind ?from_ts ?until_ts t ~kind =
  summarize_filtered ?from_ts ?until_ts t ~keep:(fun s -> String.equal s.kind kind)

let kinds t =
  List.sort_uniq String.compare (List.map (fun s -> s.kind) t.rev_samples)

let pp_summary ppf s =
  Format.fprintf ppf "%d done, %.1f req/s, rt mean %.1f ms p50 %.1f p90 %.1f p99 %.1f"
    s.completed s.throughput_rps (s.mean_rt_s *. 1e3) (s.p50_rt_s *. 1e3) (s.p90_rt_s *. 1e3)
    (s.p99_rt_s *. 1e3)
