module Engine = Simnet.Engine
module Messaging = Simnet.Messaging
module Node = Simnet.Node
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time
module Tcp = Simnet.Tcp
module Ground_truth = Trace.Ground_truth

type spec = {
  count : int;
  mix : Workload.mix;
  ramp_up : Simnet.Sim_time.span;
  stop_issuing_at : Simnet.Sim_time.t;
  only_kind : string option;
}

let run_client svc spec ~node ~rng ~proc =
  let engine = Service.engine svc in
  let messaging = Service.messaging svc in
  Tcp.connect (Service.stack svc) ~node ~proc ~dst:(Service.entry_endpoint svc)
    ~k:(fun sock ->
      let rec session () =
        if Sim_time.(Engine.now engine >= spec.stop_issuing_at) then
          Tcp.close (Service.stack svc) sock
        else begin
          let id = Service.fresh_request_id svc in
          let plan =
            match spec.only_kind with
            | Some kind -> Workload.sample_kind rng ~kind ~id
            | None -> Workload.sample rng spec.mix ~id
          in
          let started = Engine.now engine in
          Messaging.send_message messaging sock ~proc ~size:plan.Workload.request_size
            ~payload:(Service.Http_request plan)
            ~k:(fun () ->
              Messaging.recv_message messaging sock ~proc
                ~k:(fun (m : Messaging.msg) ->
                  if m.size = 0 then ()
                  else begin
                    let now = Engine.now engine in
                    Ground_truth.complete (Service.ground_truth svc) ~id;
                    Metrics.record (Service.metrics svc) ~finished_at:now
                      ~rt:(Sim_time.diff now started) ~kind:plan.Workload.kind;
                    let think = Workload.think_time rng in
                    ignore (Engine.schedule_after engine ~delay:think session)
                  end)
                ())
            ()
        end
      in
      session ())

let start svc spec =
  let engine = Service.engine svc in
  let nodes = Service.client_nodes svc in
  let base_rng = Service.rng svc in
  for i = 0 to spec.count - 1 do
    let node = nodes.(i mod Array.length nodes) in
    let rng = Rng.split base_rng (Printf.sprintf "client-%d" i) in
    let proc = Node.spawn node ~program:"client" in
    (* Stagger starts uniformly across the up-ramp, plus the client's first
       think so arrivals don't synchronise. *)
    let offset =
      Sim_time.span_add
        (Sim_time.span_scale
           (float_of_int i /. float_of_int (max 1 spec.count))
           spec.ramp_up)
        (Rng.uniform_span rng ~lo:(Sim_time.ms 1) ~hi:(Sim_time.ms 500))
    in
    ignore
      (Engine.schedule_after engine ~delay:offset (fun () ->
           run_client svc spec ~node ~rng ~proc))
  done
