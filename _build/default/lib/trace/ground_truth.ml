module Sim_time = Simnet.Sim_time

type visit = {
  context : Activity.context;
  begin_ts : Sim_time.t;
  end_ts : Sim_time.t;
}

type request = { id : int; kind : string; visits : visit list }

type pending = {
  kind : string;
  mutable rev_visits : visit list;  (* first-touch order, reversed *)
}

type t = {
  open_requests : (int, pending) Hashtbl.t;
  mutable completed : request list;
  mutable completed_count : int;
}

let create () = { open_requests = Hashtbl.create 256; completed = []; completed_count = 0 }

let find_visit pending context =
  List.find_opt (fun v -> Activity.equal_context v.context context) pending.rev_visits

let begin_visit t ~id ~kind ~context ~ts =
  let pending =
    match Hashtbl.find_opt t.open_requests id with
    | Some p -> p
    | None ->
        let p = { kind; rev_visits = [] } in
        Hashtbl.replace t.open_requests id p;
        p
  in
  match find_visit pending context with
  | Some _ -> ()  (* keep the earliest begin *)
  | None -> pending.rev_visits <- { context; begin_ts = ts; end_ts = ts } :: pending.rev_visits

let end_visit t ~id ~context ~ts =
  match Hashtbl.find_opt t.open_requests id with
  | None -> invalid_arg (Printf.sprintf "Ground_truth.end_visit: unknown request %d" id)
  | Some pending -> (
      match find_visit pending context with
      | None ->
          invalid_arg
            (Format.asprintf "Ground_truth.end_visit: no visit of %a for request %d"
               Activity.pp_context context id)
      | Some v ->
          pending.rev_visits <-
            List.map
              (fun w ->
                if Activity.equal_context w.context context then
                  { w with end_ts = Sim_time.max w.end_ts ts }
                else w)
              pending.rev_visits;
          ignore v)

let complete t ~id =
  match Hashtbl.find_opt t.open_requests id with
  | None -> invalid_arg (Printf.sprintf "Ground_truth.complete: unknown request %d" id)
  | Some pending ->
      Hashtbl.remove t.open_requests id;
      t.completed <-
        { id; kind = pending.kind; visits = List.rev pending.rev_visits } :: t.completed;
      t.completed_count <- t.completed_count + 1

let requests t = List.sort (fun a b -> Int.compare a.id b.id) t.completed
let count t = t.completed_count

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          Printf.fprintf oc "request %d %s\n" r.id r.kind;
          List.iter
            (fun v ->
              Printf.fprintf oc "visit %s %s %d %d %d %d\n" v.context.Activity.host
                v.context.program v.context.pid v.context.tid
                (Sim_time.to_ns v.begin_ts) (Sim_time.to_ns v.end_ts))
            r.visits)
        (requests t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = create () in
      let current = ref None in
      let flush_current () =
        match !current with
        | Some (id, kind, rev_visits) ->
            List.iter
              (fun v ->
                begin_visit t ~id ~kind ~context:v.context ~ts:v.begin_ts;
                end_visit t ~id ~context:v.context ~ts:v.end_ts)
              (List.rev rev_visits);
            complete t ~id
        | None -> ()
      in
      let fail lineno msg = Error (Printf.sprintf "%s:%d: %s" path lineno msg) in
      let rec loop lineno =
        match input_line ic with
        | exception End_of_file ->
            flush_current ();
            Ok t
        | line -> (
            match String.split_on_char ' ' (String.trim line) with
            | [ "request"; id; kind ] -> (
                match int_of_string_opt id with
                | Some id ->
                    flush_current ();
                    current := Some (id, kind, []);
                    loop (lineno + 1)
                | None -> fail lineno "bad request id")
            | [ "visit"; host; program; pid; tid; b; e ] -> (
                match
                  (int_of_string_opt pid, int_of_string_opt tid, int_of_string_opt b,
                   int_of_string_opt e)
                with
                | Some pid, Some tid, Some b, Some e -> (
                    match !current with
                    | None -> fail lineno "visit before any request"
                    | Some (id, kind, vs) ->
                        let v =
                          {
                            context = { Activity.host; program; pid; tid };
                            begin_ts = Sim_time.of_ns b;
                            end_ts = Sim_time.of_ns e;
                          }
                        in
                        current := Some (id, kind, v :: vs);
                        loop (lineno + 1))
                | _ -> fail lineno "bad visit fields")
            | [ "" ] | [] -> loop (lineno + 1)
            | _ -> fail lineno "unrecognised record")
      in
      loop 1)
