(** Noise traffic generators (§5.3.3 of the paper).

    Noise activities come from unrelated applications sharing the cluster's
    nodes. Two classes matter to the Correlator:

    - {b name-filterable} noise ([rlogin], [sshd]): both endpoints run
      programs outside the traced service, so an attribute filter on the
      program name removes them;
    - {b unfilterable} noise (a [mysql] command-line client querying the
      service's own database): the server-side activities run under the
      same [mysqld] program as real service traffic and can only be
      discarded by the ranker's [is_noise] check once the client-side
      activities have been filtered out.

    Generators run inside the simulation and produce real TCP traffic, so
    their activities are captured by the probe exactly like service
    traffic. *)

type spec = {
  client_program : string;  (** e.g. ["rlogin"] or ["mysql"]. *)
  server_program : string option;
      (** [Some p] starts a private echo server program [p] on a dedicated
          port; [None] targets an existing service listener at [dst_port]
          (the mysql-client case). *)
  dst_port : int;
  mean_interval : Simnet.Sim_time.span;  (** Think time between exchanges. *)
  mean_request : int;  (** Mean request size, bytes. *)
  mean_response : int;  (** Mean response size (echo server only). *)
  connections : int;  (** Number of concurrent noise clients. *)
}

val chatter_spec : client_program:string -> server_program:string -> port:int -> spec
(** A light interactive-session profile (rlogin/ssh-like): 1 connection,
    ~200-byte requests, ~1 KiB responses, 50 ms mean interval. *)

val mysql_client_spec : connections:int -> mean_interval:Simnet.Sim_time.span -> port:int -> spec
(** Clients named ["mysql"] issuing queries to an existing [mysqld]
    listener. *)

val run :
  stack:Simnet.Tcp.stack ->
  messaging:Simnet.Messaging.t ->
  rng:Simnet.Rng.t ->
  client_node:Simnet.Node.t ->
  server_node:Simnet.Node.t ->
  until:Simnet.Sim_time.t ->
  spec ->
  unit
(** Install the generator; traffic flows once the engine runs, stopping at
    [until]. With [server_program = Some _], a listener is bound on
    [server_node]; otherwise [server_node] must already listen on
    [dst_port]. *)
