(** Activity loss injection.

    The paper notes (§5.2) that network congestion could lose logged
    activities, deforming CAGs, and argues deformed CAGs are
    distinguishable from normal ones by their relative frequency. This
    module drops activities to let experiments (ext-2 in DESIGN.md) test
    that hypothesis. *)

val drop : rng:Simnet.Rng.t -> p:float -> Log.collection -> Log.collection
(** Drop each activity independently with probability [p]. *)

val drop_kind : rng:Simnet.Rng.t -> p:float -> kind:Activity.kind -> Log.collection -> Log.collection
(** Drop only activities of [kind], e.g. only RECEIVEs. *)
