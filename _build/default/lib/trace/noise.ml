module Tcp = Simnet.Tcp
module Node = Simnet.Node
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time
module Engine = Simnet.Engine
module Messaging = Simnet.Messaging

type spec = {
  client_program : string;
  server_program : string option;
  dst_port : int;
  mean_interval : Sim_time.span;
  mean_request : int;
  mean_response : int;
  connections : int;
}

let chatter_spec ~client_program ~server_program ~port =
  {
    client_program;
    server_program = Some server_program;
    dst_port = port;
    mean_interval = Sim_time.ms 50;
    mean_request = 200;
    mean_response = 1024;
    connections = 1;
  }

let mysql_client_spec ~connections ~mean_interval ~port =
  {
    client_program = "mysql";
    server_program = None;
    dst_port = port;
    mean_interval;
    mean_request = 300;
    mean_response = 2048;
    connections;
  }

let positive_size rng ~mean = max 1 (int_of_float (Rng.exponential rng ~mean:(float_of_int mean)))

(* Echo server: one thread per connection, answering each message with an
   exponentially-sized response. *)
let start_echo_server ~stack ~messaging ~rng ~node ~program ~port ~mean_response =
  let main = Node.spawn node ~program in
  Tcp.listen stack node ~port ~accept:(fun sock ->
      let proc = Node.spawn_thread node ~of_:main in
      let rec serve () =
        Messaging.recv_message messaging sock ~proc
          ~k:(fun (m : Messaging.msg) ->
            if m.size = 0 then Tcp.close stack sock
            else
              let size = positive_size rng ~mean:mean_response in
              Messaging.send_message messaging sock ~proc ~size ~k:serve ())
          ()
      in
      serve ())

let start_client ~stack ~messaging ~rng ~engine ~node ~spec ~dst ~until ~index =
  let rng = Rng.split rng (Printf.sprintf "noise-client-%s-%d" spec.client_program index) in
  let proc = Node.spawn node ~program:spec.client_program in
  Tcp.connect stack ~node ~proc ~dst ~k:(fun sock ->
      let rec loop () =
        let delay = Rng.exponential_span rng ~mean:spec.mean_interval in
        ignore
          (Engine.schedule_after engine ~delay (fun () ->
               if Sim_time.(Engine.now engine > until) then Tcp.close stack sock
               else
                 let size = positive_size rng ~mean:spec.mean_request in
                 Messaging.send_message messaging sock ~proc ~size
                   ~k:(fun () ->
                     Messaging.recv_message messaging sock ~proc
                       ~k:(fun (m : Messaging.msg) -> if m.size = 0 then () else loop ())
                       ())
                   ()))
      in
      loop ())

let run ~stack ~messaging ~rng ~client_node ~server_node ~until spec =
  let engine = Node.engine client_node in
  (match spec.server_program with
  | Some program ->
      start_echo_server ~stack ~messaging ~rng:(Rng.split rng ("noise-server-" ^ program))
        ~node:server_node ~program ~port:spec.dst_port ~mean_response:spec.mean_response
  | None -> ());
  let dst = Simnet.Address.endpoint (Node.ip server_node) spec.dst_port in
  for index = 0 to spec.connections - 1 do
    start_client ~stack ~messaging ~rng ~engine ~node:client_node ~spec ~dst ~until ~index
  done
