lib/trace/loss.ml: Activity Log Simnet
