lib/trace/binary_format.mli: Log
