lib/trace/probe.ml: Activity Hashtbl List Log Simnet String
