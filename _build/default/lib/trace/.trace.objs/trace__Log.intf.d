lib/trace/log.mli: Activity
