lib/trace/raw_format.mli: Activity Format
