lib/trace/activity.ml: Format Hashtbl Int Simnet String
