lib/trace/noise.mli: Simnet
