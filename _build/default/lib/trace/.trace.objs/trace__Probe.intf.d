lib/trace/probe.mli: Activity Log Simnet
