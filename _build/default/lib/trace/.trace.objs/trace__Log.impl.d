lib/trace/log.ml: Activity Array Filename Format Fun List Printf Raw_format Simnet String Sys
