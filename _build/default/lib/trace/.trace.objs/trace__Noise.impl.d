lib/trace/noise.ml: Printf Simnet
