lib/trace/raw_format.ml: Activity Format List Printf Result Simnet String
