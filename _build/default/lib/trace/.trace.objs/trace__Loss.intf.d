lib/trace/loss.mli: Activity Log Simnet
