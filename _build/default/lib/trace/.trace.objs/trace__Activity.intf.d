lib/trace/activity.mli: Format Simnet
