lib/trace/ground_truth.ml: Activity Format Fun Hashtbl Int List Printf Simnet String
