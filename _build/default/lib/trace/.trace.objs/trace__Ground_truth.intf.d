lib/trace/ground_truth.mli: Activity Simnet
