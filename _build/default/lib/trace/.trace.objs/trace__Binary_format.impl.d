lib/trace/binary_format.ml: Activity Array Buffer Char Fun Hashtbl List Log Printf Simnet String
