module Sim_time = Simnet.Sim_time

type t = {
  hostname : string;
  mutable rev_items : Activity.t list;
  mutable count : int;
  mutable last_ts : Sim_time.t;
}

let create ~hostname =
  { hostname; rev_items = []; count = 0; last_ts = Sim_time.zero }

let hostname t = t.hostname

let append t (a : Activity.t) =
  if t.count > 0 && Sim_time.(a.timestamp < t.last_ts) then
    invalid_arg
      (Format.asprintf "Log.append: timestamp regression on %s (%a < %a)" t.hostname
         Sim_time.pp a.timestamp Sim_time.pp t.last_ts);
  t.rev_items <- a :: t.rev_items;
  t.count <- t.count + 1;
  t.last_ts <- a.timestamp

let length t = t.count
let to_list t = List.rev t.rev_items

let of_list ~hostname items =
  let sorted = List.stable_sort Activity.compare_by_time items in
  let t = create ~hostname in
  List.iter (append t) sorted;
  t

let iter t f = List.iter f (to_list t)

type collection = t list

let total c = List.fold_left (fun acc t -> acc + t.count) 0 c

let map_activities f c =
  let map_log t = of_list ~hostname:t.hostname (List.filter_map f (to_list t)) in
  List.map map_log c

let save c ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let save_log t =
    let path = Filename.concat dir (t.hostname ^ ".trace") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        iter t (fun a ->
            output_string oc (Raw_format.to_line a);
            output_char oc '\n'))
  in
  List.iter save_log c

let load_file path =
  let hostname = Filename.remove_extension (Filename.basename path) in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (of_list ~hostname (List.rev acc))
        | line when String.trim line = "" -> loop acc (lineno + 1)
        | line -> (
            match Raw_format.of_line line with
            | Ok a -> loop (a :: acc) (lineno + 1)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      loop [] 1)

let load ~dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
      let traces =
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".trace")
        |> List.sort String.compare
      in
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match load_file (Filename.concat dir f) with
            | Ok log -> loop (log :: acc) rest
            | Error _ as e -> e)
      in
      loop [] traces
