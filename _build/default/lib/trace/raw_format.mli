(** The on-disk TCP_TRACE record format.

    One activity per line, in the paper's original layout:

    {v timestamp hostname program_name ProcessID ThreadID KIND sender_ip:port-receiver_ip:port message_size v}

    with [timestamp] in integer nanoseconds of the node's local clock and
    [KIND] one of [BEGIN]/[END]/[SEND]/[RECEIVE]. Printing then parsing is
    the identity (tested by a qcheck property). *)

val to_line : Activity.t -> string

val of_line : string -> (Activity.t, string) result
(** Parse one record; the error describes the first malformed field. *)

val pp_line : Format.formatter -> Activity.t -> unit
