(** Per-node activity logs and multi-node collections.

    Each node's tracer appends to its own log in local-clock order; the
    Correlator consumes a [collection] — one sorted log per node — exactly
    as PreciseTracer gathers files from the cluster. *)

type t
(** A single node's log. *)

val create : hostname:string -> t
val hostname : t -> string

val append : t -> Activity.t -> unit
(** Activities must be appended in non-decreasing local-timestamp order
    (which a monotonic local clock guarantees); violations raise
    [Invalid_argument] to catch probe bugs early. *)

val length : t -> int

val to_list : t -> Activity.t list
(** In timestamp order. *)

val of_list : hostname:string -> Activity.t list -> t
(** Builds a log from activities in any order; they are sorted. *)

val iter : t -> (Activity.t -> unit) -> unit

type collection = t list
(** One log per node. *)

val total : collection -> int

val map_activities : (Activity.t -> Activity.t option) -> collection -> collection
(** Rewrite or drop activities node by node (order preserved); used for
    BEGIN/END transformation, loss injection and filtering. *)

val save : collection -> dir:string -> unit
(** Write one [<hostname>.trace] file per node in TCP_TRACE format. *)

val load : dir:string -> (collection, string) result
(** Read every [*.trace] file in [dir]. *)
