module Rng = Simnet.Rng

let drop ~rng ~p collection =
  Log.map_activities (fun a -> if Rng.bernoulli rng ~p then None else Some a) collection

let drop_kind ~rng ~p ~kind collection =
  Log.map_activities
    (fun a ->
      if Activity.equal_kind a.Activity.kind kind && Rng.bernoulli rng ~p then None else Some a)
    collection
