(** The accuracy oracle (§5.2 of the paper).

    The paper modified RUBiS to tag each request with a globally unique ID
    and log, per tier, the servicing interval and the execution entity.
    Here the simulated service plays that role: it records, for every
    request, the contexts that served it and when (in each node's local
    clock). {!Core.Accuracy} later checks derived causal paths against
    these records and computes

    {v path accuracy = correct paths / all logged requests v} *)

type visit = {
  context : Activity.context;
  begin_ts : Simnet.Sim_time.t;  (** Local clock of the visit's node. *)
  end_ts : Simnet.Sim_time.t;
}

type request = {
  id : int;
  kind : string;  (** Request class, e.g. ["ViewItem"]. *)
  visits : visit list;  (** In first-touch order; one entry per context. *)
}

type t

val create : unit -> t

val begin_visit : t -> id:int -> kind:string -> context:Activity.context -> ts:Simnet.Sim_time.t -> unit
(** First touch of [context] for request [id] (creates the request record
    on its first visit). Repeated calls for the same context keep the
    earliest timestamp. *)

val end_visit : t -> id:int -> context:Activity.context -> ts:Simnet.Sim_time.t -> unit
(** Last touch so far of [context] for request [id]; later calls extend the
    interval. *)

val complete : t -> id:int -> unit
(** Mark the request finished (response delivered to the client). Only
    completed requests count as "logged requests" for accuracy. *)

val requests : t -> request list
(** Completed requests, by id. *)

val count : t -> int
(** Number of completed requests. *)

(** {1 Persistence}

    The paper's modified RUBiS wrote its request logs to files; the same
    here, so accuracy can be scored on a different machine than the one
    that ran the service. One line per record:

    {v
    request <id> <kind>
    visit <host> <program> <pid> <tid> <begin_ns> <end_ns>
    v}

    Visits belong to the most recent [request] line, in order. Hostnames
    and program names must not contain whitespace (as in the trace
    format). *)

val save : t -> path:string -> unit
(** Write the completed requests. *)

val load : path:string -> (t, string) result
(** Read an oracle written by {!save}; all loaded requests are complete. *)
