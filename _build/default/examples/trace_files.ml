(* Offline workflow with trace files, as the real deployment would run it:
   TCP_TRACE logs are collected per node into files, shipped to an analysis
   machine, and correlated there. This example simulates a short session,
   saves the logs in the paper's record format, reloads them, correlates,
   and validates against the oracle.

     dune exec examples/trace_files.exe [DIR] *)

module S = Tiersim.Scenario

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else Filename.get_temp_dir_name () ^ "/precisetracer-demo" in
  let spec = { S.default with S.clients = 60; time_scale = 0.05 } in
  let outcome = S.run spec in

  (* 1. collect: one <hostname>.trace file per server node *)
  Trace.Log.save outcome.S.logs ~dir;
  Format.printf "wrote %d activities into %s:@." (Trace.Log.total outcome.S.logs) dir;
  List.iter
    (fun log ->
      Format.printf "  %s.trace (%d records)@." (Trace.Log.hostname log) (Trace.Log.length log))
    outcome.S.logs;
  (match outcome.S.logs with
  | log :: _ ->
      Format.printf "@.first records of %s.trace:@." (Trace.Log.hostname log);
      List.iteri
        (fun i a -> if i < 3 then Format.printf "  %s@." (Trace.Raw_format.to_line a))
        (Trace.Log.to_list log)
  | [] -> ());

  (* 1b. the binary format cuts shipping cost ~5-6x *)
  let binary_path = Filename.concat dir "all.ptb" in
  Trace.Binary_format.save outcome.S.logs ~path:binary_path;
  let text_bytes =
    List.fold_left
      (fun acc log ->
        List.fold_left
          (fun acc a -> acc + String.length (Trace.Raw_format.to_line a) + 1)
          acc (Trace.Log.to_list log))
      0 outcome.S.logs
  in
  let binary_bytes = (Unix.stat binary_path).Unix.st_size in
  Format.printf "@.binary copy: %s (%d bytes vs %d text, %.1fx smaller)@." binary_path
    binary_bytes text_bytes
    (float_of_int text_bytes /. float_of_int binary_bytes);

  (* 2. reload on the "analysis machine" *)
  match Trace.Log.load ~dir with
  | Error e -> Format.printf "reload failed: %s@." e
  | Ok loaded ->
      Format.printf "@.reloaded %d activities@." (Trace.Log.total loaded);

      (* 3. correlate offline *)
      let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
      let result = Core.Correlator.correlate cfg loaded in
      Format.printf "correlated %d causal paths in %.3f s (peak ~%.1f MB)@."
        (List.length result.Core.Correlator.cags)
        result.correlation_time
        (float_of_int result.memory_bytes_estimate /. 1048576.0);
      List.iter
        (fun p -> Format.printf "  %a@." Core.Pattern.pp p)
        (Core.Pattern.classify result.Core.Correlator.cags);

      (* 4. validate against the ID-tagging oracle *)
      let verdict =
        Core.Accuracy.check ~ground_truth:outcome.S.ground_truth result.Core.Correlator.cags
      in
      Format.printf "@.%a@." Core.Accuracy.pp_verdict verdict
