(* Fault injection: the paper's §5.4.2 validation.

   Three performance problems are injected into the running service - an
   EJB delay in the app tier, a lock on the database's items table, and a
   10 Mbps NIC on the app node. For each, the latency-percentage profile of
   the average causal path is compared against the healthy baseline and the
   diagnosis rules must name the right component.

     dune exec examples/fault_injection.exe *)

module S = Tiersim.Scenario
module Faults = Tiersim.Faults

let spec faults = { S.default with S.clients = 300; time_scale = 0.1; faults }

let profile faults =
  let outcome = S.run (spec faults) in
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let result = Core.Correlator.correlate cfg outcome.S.logs in
  let pattern =
    let two_db p =
      List.length
        (String.split_on_char '>' p.Core.Pattern.name |> List.filter (String.equal "mysqld"))
      >= 2
    in
    let patterns = Core.Pattern.classify result.Core.Correlator.cags in
    match List.find_opt two_db patterns with Some p -> p | None -> List.hd patterns
  in
  Core.Aggregate.of_pattern pattern

let () =
  let normal = profile [] in
  Format.printf "healthy baseline:@.%a@.@." Core.Aggregate.pp normal;
  List.iter
    (fun fault ->
      let observed = profile [ fault ] in
      let report = Core.Analysis.diagnose ~baseline:normal ~observed in
      Format.printf "=== injected: %s ===@." (Faults.name fault);
      Format.printf "%a@.@." Core.Analysis.pp_report report)
    [ Faults.ejb_delay; Faults.database_lock; Faults.ejb_network ]
