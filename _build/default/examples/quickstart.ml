(* Quickstart: trace one request through a hand-built two-tier service and
   print its causal path.

   This example uses only the public API, bottom-up: build a tiny cluster
   on the simulator, attach the TCP_TRACE probe, run one request, then feed
   the collected per-node logs to the Correlator and inspect the CAG.

     dune exec examples/quickstart.exe *)

module Address = Simnet.Address
module Engine = Simnet.Engine
module Messaging = Simnet.Messaging
module Node = Simnet.Node
module Tcp = Simnet.Tcp
module ST = Simnet.Sim_time

let () =
  (* -- a two-node cluster -- *)
  let engine = Engine.create () in
  let stack = Tcp.create_stack ~engine in
  let messaging = Messaging.create stack in
  let front =
    Node.create ~engine ~hostname:"front" ~ip:(Address.ip_of_string "10.0.0.1") ~cores:2 ()
  in
  let backend =
    Node.create ~engine ~hostname:"backend" ~ip:(Address.ip_of_string "10.0.0.2") ~cores:2
      ~clock:(Simnet.Clock.create ~skew:(ST.us 400) ()) (* clocks need not agree *)
      ()
  in
  let client_node =
    Node.create ~engine ~hostname:"laptop" ~ip:(Address.ip_of_string "10.0.0.9") ~cores:1 ()
  in

  (* -- the tracer: only the service nodes are instrumented -- *)
  let probe = Trace.Probe.attach ~stack ~only:[ "front"; "backend" ] () in
  Trace.Probe.enable probe;

  (* -- a backend worker echoing a 12 KiB result for each query -- *)
  let backend_main = Node.spawn backend ~program:"worker" in
  Tcp.listen stack backend ~port:9000 ~accept:(fun sock ->
      let proc = Node.spawn_thread backend ~of_:backend_main in
      let rec serve () =
        Messaging.recv_message messaging sock ~proc
          ~k:(fun m ->
            if m.Messaging.size = 0 then Tcp.close stack sock
            else
              Simnet.Cpu.submit (Node.cpu backend) ~work:(ST.ms 3) (fun () ->
                  Messaging.send_message messaging sock ~proc ~size:12_288 ~k:serve ()))
          ()
      in
      serve ());

  (* -- a front server: recv request, call the backend, respond -- *)
  Tcp.listen stack front ~port:80 ~accept:(fun client_sock ->
      let proc = Node.spawn front ~program:"frontd" in
      Messaging.recv_message messaging client_sock ~proc
        ~k:(fun _request ->
          Tcp.connect stack ~node:front ~proc
            ~dst:(Address.endpoint (Node.ip backend) 9000)
            ~k:(fun back_sock ->
              Messaging.send_message messaging back_sock ~proc ~size:200
                ~k:(fun () ->
                    Messaging.recv_message messaging back_sock ~proc
                      ~k:(fun result ->
                          Simnet.Cpu.submit (Node.cpu front) ~work:(ST.ms 2) (fun () ->
                              Messaging.send_message messaging client_sock ~proc
                                ~size:(result.Messaging.size + 800)
                                ~k:(fun () -> ())
                                ()))
                      ())
                ()))
        ());

  (* -- one client request -- *)
  let client = Node.spawn client_node ~program:"curl" in
  Tcp.connect stack ~node:client_node ~proc:client
    ~dst:(Address.endpoint (Node.ip front) 80)
    ~k:(fun sock ->
      Messaging.send_message messaging sock ~proc:client ~size:300
        ~k:(fun () -> Messaging.recv_message messaging sock ~proc:client ~k:(fun _ -> ()) ())
        ());
  Engine.run engine;

  (* -- correlate the collected logs into causal paths -- *)
  Format.printf "captured %d activities on %d nodes@.@." (Trace.Probe.activity_count probe)
    (List.length (Trace.Probe.logs probe));
  let transform =
    Core.Transform.config ~entry_points:[ Address.endpoint (Node.ip front) 80 ] ()
  in
  let result =
    Core.Correlator.correlate (Core.Correlator.config ~transform ()) (Trace.Probe.logs probe)
  in
  match result.Core.Correlator.cags with
  | [ cag ] ->
      Format.printf "%a@.@." Core.Cag.pp cag;
      Format.printf "route: %s@." (Core.Pattern.name_of cag);
      Format.printf "end-to-end: %a@.@." ST.pp_span (Core.Cag.duration cag);
      Format.printf
        "component breakdown (cross-node shares absorb the backend's +400us clock skew - the \
         paper accepts the same inaccuracy; intra-node shares and the total are exact):@.";
      List.iter
        (fun (c, pct) ->
          Format.printf "  %-16s %5.1f%%@." (Core.Latency.component_label c) (100.0 *. pct))
        (Core.Latency.percentages (Core.Latency.breakdown cag));
      Format.printf "@.graphviz (pipe to `dot -Tsvg`):@.%s@." (Core.Cag.to_dot cag)
  | cags -> Format.printf "expected one causal path, got %d@." (List.length cags)
