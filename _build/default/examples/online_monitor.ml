(* Live monitoring: correlate causal paths while the service runs and catch
   a regression the moment it appears.

   A Database_Lock fault strikes the running auction site halfway through
   the session. The online correlator (attached directly to the tracing
   probe) turns activities into causal paths in real time, and the drift
   detector watches each pattern's latency-percentage profile - no offline
   analysis step, no resource monitoring.

     dune exec examples/online_monitor.exe *)

module Service = Tiersim.Service
module S = Tiersim.Scenario
module Faults = Tiersim.Faults
module ST = Simnet.Sim_time

let () =
  let time_scale = 0.1 in
  let up, runtime, down = S.stage_spans ~time_scale in
  let onset = ST.span_add up (ST.span_scale 0.5 runtime) in
  Format.printf "running 300 clients; Database_Lock strikes at t=%a@.@." ST.pp_span onset;

  let cfg =
    {
      Service.default_config with
      Service.faults = [ Faults.database_lock ];
      fault_onset = Some onset;
    }
  in
  let svc = Service.create cfg in
  Trace.Probe.enable (Service.probe svc);

  let detector =
    Core.Drift.create ~config:{ Core.Drift.warmup = 400; window = 150; threshold = 0.08 } ()
  in
  let paths_done = ref 0 in
  let correlator_cfg =
    Core.Correlator.config ~transform:(Service.transform_config svc) ()
  in
  let online =
    Core.Online.attach ~config:correlator_cfg ~probe:(Service.probe svc)
      ~hosts:(Service.server_hostnames svc)
      ~on_path:(fun cag ->
        incr paths_done;
        List.iter
          (fun alert ->
            Format.printf "!! t=%a  path #%d  ALERT %a@."
              Simnet.Sim_time.pp
              (Simnet.Engine.now (Service.engine svc))
              !paths_done Core.Drift.pp_alert alert)
          (Core.Drift.observe detector cag))
      ()
  in

  let stop = ST.add (ST.add (ST.add ST.zero up) runtime) down in
  Tiersim.Client.start svc
    {
      Tiersim.Client.count = 300;
      mix = Tiersim.Workload.Browse_only;
      ramp_up = up;
      stop_issuing_at = stop;
      only_kind = None;
    };
  Simnet.Engine.run (Service.engine svc);
  Core.Online.finish online;

  Format.printf "@.run complete: %d paths correlated live, %d alerts@." !paths_done
    (List.length (Core.Drift.alerts detector));
  match Core.Drift.alerts detector with
  | [] -> Format.printf "no regression detected (unexpected!)@."
  | alerts ->
      let first = List.hd alerts in
      Format.printf "first alert implicates %s - the injected fault's home.@."
        (Core.Latency.component_label first.Core.Drift.comp)
