(* Bottleneck hunting: the paper's §5.4.1 misconfiguration case.

   The three-tier auction site degrades when concurrent clients grow from
   500 to 800, yet every node's CPU stays well below 80% — resource
   monitoring is no help. PreciseTracer's average causal paths show the
   httpd2java interaction share exploding, pointing at the app server's
   connection admission: its MaxThreads knob (default 40). Raising it to
   250 fixes the 500-800 range, until the hardware becomes the limit.

     dune exec examples/bottleneck_hunt.exe *)

module S = Tiersim.Scenario
module Metrics = Tiersim.Metrics
module Service = Tiersim.Service

let spec ~clients ~max_threads =
  { S.default with S.clients; max_threads; time_scale = 0.1; name = "hunt" }

let viewitem_profile outcome =
  let cfg = Core.Correlator.config ~transform:outcome.S.transform () in
  let result = Core.Correlator.correlate cfg outcome.S.logs in
  let patterns = Core.Pattern.classify result.Core.Correlator.cags in
  let two_db p =
    List.length
      (String.split_on_char '>' p.Core.Pattern.name |> List.filter (String.equal "mysqld"))
    >= 2
  in
  let pattern =
    match List.find_opt two_db patterns with Some p -> p | None -> List.hd patterns
  in
  Core.Aggregate.of_pattern pattern

let describe name outcome =
  let s = outcome.S.summary in
  Format.printf "%-22s %6.1f req/s, mean RT %7.1f ms, CPUs: web %.0f%% app %.0f%% db %.0f%%@."
    name s.Metrics.throughput_rps (s.mean_rt_s *. 1e3)
    (100.0 *. outcome.S.web.Service.cpu_utilization)
    (100.0 *. outcome.S.app.cpu_utilization)
    (100.0 *. outcome.S.db.cpu_utilization)

let () =
  Format.printf "== step 1: the symptom ==@.";
  let healthy = S.run (spec ~clients:400 ~max_threads:40) in
  let sick = S.run (spec ~clients:700 ~max_threads:40) in
  describe "400 clients (MT=40)" healthy;
  describe "700 clients (MT=40)" sick;
  Format.printf
    "@.Throughput barely grew and response time exploded, but no CPU is hot:@.the traditional \
     utilization check points nowhere.@.@.";

  Format.printf "== step 2: what the causal paths say ==@.";
  let base_avg = viewitem_profile healthy in
  let sick_avg = viewitem_profile sick in
  Format.printf "%a@.@." Core.Aggregate.pp base_avg;
  Format.printf "%a@.@." Core.Aggregate.pp sick_avg;
  let report = Core.Analysis.diagnose ~baseline:base_avg ~observed:sick_avg in
  Format.printf "%a@.@." Core.Analysis.pp_report report;

  Format.printf "== step 3: apply the fix (MaxThreads 40 -> 250) ==@.";
  let fixed = S.run (spec ~clients:700 ~max_threads:250) in
  describe "700 clients (MT=250)" fixed;
  let improvement =
    (sick.S.summary.Metrics.mean_rt_s -. fixed.S.summary.Metrics.mean_rt_s)
    /. sick.S.summary.Metrics.mean_rt_s
  in
  Format.printf "@.mean response time down %.0f%%; the paper's Fig. 16 story.@." (100.0 *. improvement);
  Format.printf "@.== step 4: and the new ceiling is real hardware ==@.";
  let limit = S.run (spec ~clients:1000 ~max_threads:250) in
  describe "1000 clients (MT=250)" limit;
  Format.printf "at 1000 clients the web tier's CPU is the wall - no knob left to turn.@."
