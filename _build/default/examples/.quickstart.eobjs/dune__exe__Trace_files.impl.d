examples/trace_files.ml: Array Core Filename Format List String Sys Tiersim Trace Unix
