examples/bottleneck_hunt.ml: Core Format List String Tiersim
