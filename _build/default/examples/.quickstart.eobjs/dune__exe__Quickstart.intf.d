examples/quickstart.mli:
