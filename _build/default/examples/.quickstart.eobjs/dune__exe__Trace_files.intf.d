examples/trace_files.mli:
