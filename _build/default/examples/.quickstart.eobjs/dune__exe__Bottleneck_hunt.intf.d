examples/bottleneck_hunt.mli:
