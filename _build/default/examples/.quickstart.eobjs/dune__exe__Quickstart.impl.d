examples/quickstart.ml: Core Format List Simnet Trace
