examples/online_monitor.ml: Core Format List Simnet Tiersim Trace
