examples/fault_injection.ml: Core Format List String Tiersim
