(* Tests for the correlation engine: the Fig. 3 pseudo-code cases, n-to-n
   merging (Fig. 4), thread-reuse checks, and orphan handling. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Cag = Core.Cag
module Cag_engine = Core.Cag_engine
module Sim_time = Simnet.Sim_time

(* Feed candidates directly (engine-level tests bypass the ranker). *)
let run_engine acts =
  let engine = Cag_engine.create () in
  List.iter (Cag_engine.step engine) acts;
  engine

let b ts = H.act ~kind:Activity.Begin ~ts ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:400
let e ts size = H.act ~kind:Activity.End_ ~ts ~ctx:H.web_ctx ~flow:H.web_client_flow ~size
let ws ts size = H.act ~kind:Activity.Send ~ts ~ctx:H.web_ctx ~flow:H.web_app_flow ~size
let ar ts size = H.act ~kind:Activity.Receive ~ts ~ctx:H.app_ctx ~flow:H.web_app_flow ~size
let as_ ts size = H.act ~kind:Activity.Send ~ts ~ctx:H.app_ctx ~flow:H.app_web_flow ~size
let wr ts size = H.act ~kind:Activity.Receive ~ts ~ctx:H.web_ctx ~flow:H.app_web_flow ~size

let test_begin_starts_cag () =
  let engine = run_engine [ b 0 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "started" 1 stats.Cag_engine.cags_started;
  Alcotest.(check int) "not finished" 0 stats.cags_finished;
  Alcotest.(check int) "one open" 1 (List.length (Cag_engine.unfinished engine))

let test_full_round_trip () =
  let engine = run_engine [ b 0; ws 1 100; ar 2 100; as_ 3 200; wr 4 200; e 5 300 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "finished" 1 stats.Cag_engine.cags_finished;
  Alcotest.(check int) "no orphans" 0 stats.orphans;
  match Cag_engine.finished engine with
  | [ cag ] ->
      H.check_valid cag;
      Alcotest.(check int) "six vertices" 6 (Cag.size cag);
      Alcotest.(check int) "duration" 5 (Sim_time.span_ns (Cag.duration cag))
  | _ -> Alcotest.fail "one CAG"

let test_send_merge () =
  (* One logical 16k message sent in two syscalls, received in one. *)
  let engine = run_engine [ b 0; ws 1 8192; ws 2 8192; ar 3 16384; as_ 4 10; wr 5 10; e 6 5 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "one merge" 1 stats.Cag_engine.send_merges;
  Alcotest.(check int) "finished" 1 stats.cags_finished;
  match Cag_engine.finished engine with
  | [ cag ] ->
      H.check_valid cag;
      Alcotest.(check int) "merged into 6 vertices" 6 (Cag.size cag);
      let sizes =
        List.filter_map
          (fun (v : Cag.vertex) ->
            match v.Cag.activity.Activity.kind with
            | Activity.Send -> Some v.Cag.activity.Activity.message.size
            | _ -> None)
          (Cag.vertices cag)
      in
      Alcotest.(check (list int)) "send sizes" [ 16384; 10 ] sizes
  | _ -> Alcotest.fail "one CAG"

let test_fig4_n_to_n () =
  (* The paper's Fig. 4: sender writes 2 parts, receiver reads 3 parts. *)
  let engine =
    run_engine
      [ b 0; ws 1 8000; ws 2 4000; ar 3 5000; ar 4 5000; ar 5 2000; as_ 6 10; wr 7 10; e 8 5 ]
  in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "send merge" 1 stats.Cag_engine.send_merges;
  Alcotest.(check int) "two partial receives" 2 stats.partial_receives;
  Alcotest.(check int) "finished" 1 stats.cags_finished;
  match Cag_engine.finished engine with
  | [ cag ] ->
      H.check_valid cag;
      let receives =
        List.filter
          (fun (v : Cag.vertex) ->
            Activity.equal_kind v.Cag.activity.Activity.kind Activity.Receive)
          (Cag.vertices cag)
      in
      (match receives with
      | [ r1; _r2 ] ->
          Alcotest.(check int) "receive carries full size" 12000
            r1.Cag.activity.Activity.message.size;
          Alcotest.(check int) "completing chunk's timestamp" 5
            (Sim_time.to_ns r1.Cag.activity.Activity.timestamp)
      | _ -> Alcotest.fail "expected two receive vertices")
  | _ -> Alcotest.fail "one CAG"

let test_rule1_race_reopen () =
  (* The receive of the first chunk completes before the sender's second
     chunk is ranked (possible because rule 1 outranks rule 2): the engine
     must reopen the SEND and extend the same RECEIVE vertex. *)
  let engine =
    run_engine [ b 0; ws 1 8192; ar 2 8192; ws 3 8192; ar 4 8192; as_ 5 10; wr 6 10; e 7 5 ]
  in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "merge after drain" 1 stats.Cag_engine.send_merges;
  Alcotest.(check int) "receive merge" 1 stats.receive_merges;
  Alcotest.(check int) "finished" 1 stats.cags_finished;
  Alcotest.(check int) "no unmatched" 0 stats.unmatched_receives;
  match Cag_engine.finished engine with
  | [ cag ] ->
      H.check_valid cag;
      Alcotest.(check int) "six vertices" 6 (Cag.size cag)
  | _ -> Alcotest.fail "one CAG"

let test_end_merge () =
  (* Response sent to the client in three syscalls: one END vertex. *)
  let engine = run_engine [ b 0; ws 1 10; ar 2 10; as_ 3 10; wr 4 10; e 5 8192; e 6 8192; e 7 1000 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "two end merges" 2 stats.Cag_engine.end_merges;
  Alcotest.(check int) "finished once" 1 stats.cags_finished;
  match Cag_engine.finished engine with
  | [ cag ] ->
      H.check_valid cag;
      let last = List.nth (Cag.vertices cag) (Cag.size cag - 1) in
      Alcotest.(check int) "END accumulated size" 17384
        last.Cag.activity.Activity.message.size
  | _ -> Alcotest.fail "one CAG"

let test_two_sequential_requests_same_contexts () =
  (* Same worker serves two requests back to back; both must resolve. *)
  let shift = 1_000_000 in
  let req base =
    [ b base; ws (base + 1) 50; ar (base + 2) 50; as_ (base + 3) 60; wr (base + 4) 60; e (base + 5) 70 ]
  in
  let engine = run_engine (req 0 @ req shift) in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "both finished" 2 stats.Cag_engine.cags_finished;
  Alcotest.(check int) "no orphans" 0 stats.orphans;
  List.iter H.check_valid (Cag_engine.finished engine)

let test_thread_reuse_blocked_edge () =
  (* Interleave two requests on distinct web workers but the same app
     thread (recycled). The app thread's receive for request B must not get
     a context edge from request A's vertices. *)
  let web2 = H.ctx ~host:"web" ~program:"httpd" ~pid:11 ~tid:11 () in
  let cw2 = H.flow "10.0.0.2" 40001 "10.0.1.1" 80 in
  let wc2 = Simnet.Address.reverse cw2 in
  let wa2 = H.flow "10.0.1.1" 41001 "10.0.2.1" 8009 in
  let aw2 = Simnet.Address.reverse wa2 in
  let b2 ts = H.act ~kind:Activity.Begin ~ts ~ctx:web2 ~flow:cw2 ~size:10 in
  let ws2 ts = H.act ~kind:Activity.Send ~ts ~ctx:web2 ~flow:wa2 ~size:20 in
  let ar2 ts = H.act ~kind:Activity.Receive ~ts ~ctx:H.app_ctx ~flow:wa2 ~size:20 in
  let as2 ts = H.act ~kind:Activity.Send ~ts ~ctx:H.app_ctx ~flow:aw2 ~size:30 in
  let wr2 ts = H.act ~kind:Activity.Receive ~ts ~ctx:web2 ~flow:aw2 ~size:30 in
  let e2 ts = H.act ~kind:Activity.End_ ~ts ~ctx:web2 ~flow:wc2 ~size:40 in
  let engine =
    run_engine
      [
        b 0; ws 1 50; ar 2 50; as_ 3 60; wr 4 60; e 5 70;
        (* request B on the recycled app thread *)
        b2 10; ws2 11; ar2 12; as2 13; wr2 14; e2 15;
      ]
  in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "both finished" 2 stats.Cag_engine.cags_finished;
  (* The app thread's cmap still pointed at request A's send when request
     B's receive arrived: context edge suppressed. *)
  Alcotest.(check int) "reuse blocked" 1 stats.thread_reuse_blocked;
  match Cag_engine.finished engine with
  | [ cag_a; cag_b ] ->
      H.check_valid cag_a;
      H.check_valid cag_b;
      let receive_parents =
        List.filter_map
          (fun (v : Cag.vertex) ->
            if
              Activity.equal_kind v.Cag.activity.Activity.kind Activity.Receive
              && Activity.equal_context v.Cag.activity.Activity.context H.app_ctx
            then Some (List.length v.Cag.parents)
            else None)
          (Cag.vertices cag_b)
      in
      Alcotest.(check (list int)) "B's app receive has only the message parent" [ 1 ]
        receive_parents
  | _ -> Alcotest.fail "two CAGs"

let test_unmatched_receive_counted () =
  let engine = run_engine [ ar 5 100 ] in
  Alcotest.(check int) "unmatched" 1 (Cag_engine.stats engine).Cag_engine.unmatched_receives

let test_orphan_chain_no_begin () =
  (* Loss of the BEGIN: the whole chain stays out of any CAG. *)
  let engine = run_engine [ ws 1 50; ar 2 50; as_ 3 60; wr 4 60; e 5 70 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "nothing finished" 0 stats.Cag_engine.cags_finished;
  Alcotest.(check bool) "orphans recorded" true (stats.orphans > 0)

let test_lost_end_leaves_deformed () =
  let engine = run_engine [ b 0; ws 1 50; ar 2 50; as_ 3 60; wr 4 60 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "unfinished" 0 stats.Cag_engine.cags_finished;
  Alcotest.(check int) "one deformed" 1 (List.length (Cag_engine.unfinished engine))

let test_on_finished_callback () =
  let seen = ref [] in
  let engine = Cag_engine.create ~on_finished:(fun cag -> seen := Cag.size cag :: !seen) () in
  List.iter (Cag_engine.step engine) [ b 0; ws 1 10; ar 2 10; as_ 3 10; wr 4 10; e 5 10 ];
  Alcotest.(check (list int)) "callback fired with CAG" [ 6 ] !seen

let test_live_vertex_accounting () =
  let engine = Cag_engine.create () in
  List.iter (Cag_engine.step engine) [ b 0; ws 1 10; ar 2 10 ];
  Alcotest.(check int) "live while open" 3 (Cag_engine.live_vertices engine);
  List.iter (Cag_engine.step engine) [ as_ 3 10; wr 4 10; e 5 10 ];
  Alcotest.(check int) "released at finish" 0 (Cag_engine.live_vertices engine);
  Alcotest.(check int) "peak" 6 (Cag_engine.stats engine).Cag_engine.peak_live_vertices

let test_mmap_entries_tracking () =
  let engine = Cag_engine.create () in
  Cag_engine.step engine (b 0);
  Cag_engine.step engine (ws 1 10);
  Alcotest.(check bool) "mmap has the flow" true
    (Cag_engine.has_mmap_send engine H.web_app_flow);
  Alcotest.(check int) "one entry" 1 (Cag_engine.mmap_entries engine);
  Cag_engine.step engine (ar 2 10);
  Alcotest.(check bool) "consumed" false (Cag_engine.has_mmap_send engine H.web_app_flow);
  Alcotest.(check int) "zero entries" 0 (Cag_engine.mmap_entries engine)

let test_interleaved_sends_same_flow_fifo () =
  (* Two outstanding logical messages on one flow (pipelined): receives
     must match in FIFO order. The sends come from different contexts so
     they are not merged. *)
  let web_b = H.ctx ~host:"web" ~program:"httpd" ~pid:77 ~tid:77 () in
  let s1 = H.act ~kind:Activity.Send ~ts:1 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:100 in
  let s2 = H.act ~kind:Activity.Send ~ts:2 ~ctx:web_b ~flow:H.web_app_flow ~size:200 in
  let r1 = H.act ~kind:Activity.Receive ~ts:3 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:100 in
  let r2 = H.act ~kind:Activity.Receive ~ts:4 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:200 in
  let engine = run_engine [ s1; s2; r1; r2 ] in
  let stats = Cag_engine.stats engine in
  Alcotest.(check int) "no unmatched" 0 stats.Cag_engine.unmatched_receives;
  Alcotest.(check int) "no crossings" 0 stats.crossed_boundaries;
  Alcotest.(check int) "mmap drained" 0 (Cag_engine.mmap_entries engine)

let () =
  Alcotest.run "cag_engine"
    [
      ( "pseudo-code cases",
        [
          Alcotest.test_case "BEGIN starts a CAG" `Quick test_begin_starts_cag;
          Alcotest.test_case "full round trip" `Quick test_full_round_trip;
          Alcotest.test_case "consecutive sends merge" `Quick test_send_merge;
          Alcotest.test_case "Fig. 4 n-to-n matching" `Quick test_fig4_n_to_n;
          Alcotest.test_case "rule-1 race reopens the send" `Quick test_rule1_race_reopen;
          Alcotest.test_case "multi-part END merges" `Quick test_end_merge;
        ] );
      ( "contexts and reuse",
        [
          Alcotest.test_case "sequential requests" `Quick test_two_sequential_requests_same_contexts;
          Alcotest.test_case "thread reuse blocks context edge" `Quick
            test_thread_reuse_blocked_edge;
          Alcotest.test_case "pipelined sends match FIFO" `Quick
            test_interleaved_sends_same_flow_fifo;
        ] );
      ( "degraded input",
        [
          Alcotest.test_case "unmatched receive" `Quick test_unmatched_receive_counted;
          Alcotest.test_case "lost BEGIN orphans chain" `Quick test_orphan_chain_no_begin;
          Alcotest.test_case "lost END leaves deformed CAG" `Quick test_lost_end_leaves_deformed;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "on_finished callback" `Quick test_on_finished_callback;
          Alcotest.test_case "live vertex accounting" `Quick test_live_vertex_accounting;
          Alcotest.test_case "mmap tracking" `Quick test_mmap_entries_tracking;
        ] );
    ]
