(* Tests for the ranker: rules 1 and 2, windowing, concurrency-disturbance
   promotion, and the is_noise check. *)

module H = Test_helpers.Helpers
module Activity = Trace.Activity
module Ranker = Core.Ranker
module Log = Trace.Log
module Sim_time = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

(* A ranker over raw logs with a controllable mmap oracle. *)
let ranker ?(window = Sim_time.ms 10) ?skew_allowance ?(mmap = fun _ -> false) logs =
  Ranker.create ~window ?skew_allowance ~has_mmap_send:mmap logs

let drain r =
  let rec loop acc =
    match Ranker.rank r with None -> List.rev acc | Some a -> loop (a :: acc)
  in
  loop []

let kinds = List.map (fun (a : Activity.t) -> a.kind)

(* Drain with a realistic mmap oracle: a flow matches once its SEND has
   been emitted (and is consumed by its completing RECEIVE). *)
let drain_tracking r emitted =
  let rec loop acc =
    match Ranker.rank r with
    | None -> List.rev acc
    | Some a ->
        (match a.Activity.kind with
        | Activity.Send ->
            let n =
              Option.value ~default:0
                (Simnet.Address.Flow_table.find_opt emitted a.Activity.message.flow)
            in
            Simnet.Address.Flow_table.replace emitted a.Activity.message.flow (n + 1)
        | Activity.Receive -> (
            match Simnet.Address.Flow_table.find_opt emitted a.Activity.message.flow with
            | Some 1 -> Simnet.Address.Flow_table.remove emitted a.Activity.message.flow
            | Some n -> Simnet.Address.Flow_table.replace emitted a.Activity.message.flow (n - 1)
            | None -> ())
        | Activity.Begin | Activity.End_ -> ());
        loop (a :: acc)
  in
  loop []

let with_tracking_ranker ?window ?skew_allowance logs =
  let emitted = Simnet.Address.Flow_table.create 8 in
  let r =
    ranker ?window ?skew_allowance
      ~mmap:(fun f ->
        Option.value ~default:0 (Simnet.Address.Flow_table.find_opt emitted f) > 0)
      logs
  in
  (r, emitted)

let test_rule2_send_before_receive () =
  (* A SEND on node A and its RECEIVE on node B, receive timestamp smaller
     due to skew: rule 2 must still emit the SEND first. *)
  let s = H.act ~kind:Activity.Send ~ts:100 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:10 in
  let r = H.act ~kind:Activity.Receive ~ts:50 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:10 in
  let logs = [ Log.of_list ~hostname:"web" [ s ]; Log.of_list ~hostname:"app" [ r ] ] in
  let rk, emitted = with_tracking_ranker logs in
  let order = drain_tracking rk emitted in
  Alcotest.(check (list bool)) "send first" [ true; false ]
    (List.map (fun (a : Activity.t) -> Activity.equal_kind a.kind Activity.Send) order)

let test_rule1_matched_receive_first () =
  (* Heads: a RECEIVE whose SEND is in the mmap, and a BEGIN with an earlier
     timestamp on another node. Rule 1 beats priority. *)
  let r = H.act ~kind:Activity.Receive ~ts:100 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:10 in
  let b = H.act ~kind:Activity.Begin ~ts:10 ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:9 in
  let logs = [ Log.of_list ~hostname:"web" [ b ]; Log.of_list ~hostname:"app" [ r ] ] in
  let order = drain (ranker ~mmap:(fun _ -> true) logs) in
  match kinds order with
  | [ Activity.Receive; Activity.Begin ] -> ()
  | _ -> Alcotest.fail "rule 1 should pick the matched receive first"

let test_priority_order () =
  (* Four heads on four nodes, same timestamps: BEGIN < SEND < END < RECEIVE.
     The receive's send is not in the mmap, but with everything else popped
     first it eventually surfaces via the noise path... so give it a match. *)
  let b = H.act ~kind:Activity.Begin ~ts:5 ~ctx:(H.ctx ~host:"n1" ()) ~flow:H.client_web_flow ~size:1 in
  let s = H.act ~kind:Activity.Send ~ts:5 ~ctx:(H.ctx ~host:"n2" ()) ~flow:H.web_app_flow ~size:1 in
  let e = H.act ~kind:Activity.End_ ~ts:5 ~ctx:(H.ctx ~host:"n3" ()) ~flow:H.web_client_flow ~size:1 in
  let r = H.act ~kind:Activity.Receive ~ts:5 ~ctx:(H.ctx ~host:"n4" ()) ~flow:H.app_db_flow ~size:1 in
  let logs =
    [
      Log.of_list ~hostname:"n4" [ r ];
      Log.of_list ~hostname:"n3" [ e ];
      Log.of_list ~hostname:"n2" [ s ];
      Log.of_list ~hostname:"n1" [ b ];
    ]
  in
  (* mmap matches only after the send has been emitted. *)
  let sent = ref false in
  let r' =
    ranker
      ~mmap:(fun f -> !sent && Simnet.Address.flow_equal f H.app_db_flow)
      logs
  in
  let order =
    let rec loop acc =
      match Ranker.rank r' with
      | None -> List.rev acc
      | Some a ->
          if Activity.equal_kind a.Activity.kind Activity.Send then sent := true;
          loop (a :: acc)
    in
    loop []
  in
  (* Rule 1 outranks the priority list: once the SEND is emitted, the
     matched RECEIVE preempts the END. Rule 2 still orders BEGIN < SEND. *)
  match kinds order with
  | [ Activity.Begin; Activity.Send; Activity.Receive; Activity.End_ ] -> ()
  | ks ->
      Alcotest.failf "bad order: %s"
        (String.concat "," (List.map Activity.kind_to_string ks))

let test_priority_order_rule2_only () =
  (* With no mmap oracle at all, rule 2 orders BEGIN < SEND < END and the
     unmatched RECEIVE is eventually discarded as noise. *)
  let b = H.act ~kind:Activity.Begin ~ts:5 ~ctx:(H.ctx ~host:"n1" ()) ~flow:H.client_web_flow ~size:1 in
  let s = H.act ~kind:Activity.Send ~ts:5 ~ctx:(H.ctx ~host:"n2" ()) ~flow:H.web_app_flow ~size:1 in
  let e = H.act ~kind:Activity.End_ ~ts:5 ~ctx:(H.ctx ~host:"n3" ()) ~flow:H.web_client_flow ~size:1 in
  let r = H.act ~kind:Activity.Receive ~ts:5 ~ctx:(H.ctx ~host:"n4" ()) ~flow:H.app_db_flow ~size:1 in
  let logs =
    [
      Log.of_list ~hostname:"n4" [ r ];
      Log.of_list ~hostname:"n3" [ e ];
      Log.of_list ~hostname:"n2" [ s ];
      Log.of_list ~hostname:"n1" [ b ];
    ]
  in
  let rk = ranker logs in
  let order = drain rk in
  (match kinds order with
  | [ Activity.Begin; Activity.Send; Activity.End_ ] -> ()
  | ks ->
      Alcotest.failf "bad order: %s" (String.concat "," (List.map Activity.kind_to_string ks)));
  Alcotest.(check int) "receive discarded" 1 (Ranker.stats rk).Ranker.noise_discarded

let test_same_queue_order_preserved () =
  (* Activities of one node must come out in log order regardless of kind. *)
  let acts =
    [
      H.act ~kind:Activity.Receive ~ts:1 ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:1;
      H.act ~kind:Activity.Send ~ts:2 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:1;
      H.act ~kind:Activity.Receive ~ts:3 ~ctx:H.web_ctx ~flow:H.app_web_flow ~size:1;
      H.act ~kind:Activity.Send ~ts:4 ~ctx:H.web_ctx ~flow:H.web_client_flow ~size:1;
    ]
  in
  let logs = [ Log.of_list ~hostname:"web" acts ] in
  let order = drain (ranker ~mmap:(fun _ -> true) logs) in
  Alcotest.(check (list int)) "log order" [ 1; 2; 3; 4 ]
    (List.map (fun (a : Activity.t) -> Sim_time.to_ns a.Activity.timestamp) order)

let test_concurrency_disturbance_swap () =
  (* The paper's Fig. 6: two queues, both heads are RECEIVEs blocking the
     other's matched SEND at position 1. *)
  let f12 = H.flow "10.0.0.1" 100 "10.0.0.2" 200 in
  let f21 = H.flow "10.0.0.2" 300 "10.0.0.1" 400 in
  let ctx1a = H.ctx ~host:"n1" ~pid:1 ~tid:1 () in
  let ctx1b = H.ctx ~host:"n1" ~pid:2 ~tid:2 () in
  let ctx2a = H.ctx ~host:"n2" ~pid:3 ~tid:3 () in
  let ctx2b = H.ctx ~host:"n2" ~pid:4 ~tid:4 () in
  let n1 =
    [
      H.act ~kind:Activity.Receive ~ts:10 ~ctx:ctx1a ~flow:f21 ~size:5;
      H.act ~kind:Activity.Send ~ts:11 ~ctx:ctx1b ~flow:f12 ~size:5;
    ]
  in
  let n2 =
    [
      H.act ~kind:Activity.Receive ~ts:10 ~ctx:ctx2a ~flow:f12 ~size:5;
      H.act ~kind:Activity.Send ~ts:11 ~ctx:ctx2b ~flow:f21 ~size:5;
    ]
  in
  let logs = [ Log.of_list ~hostname:"n1" n1; Log.of_list ~hostname:"n2" n2 ] in
  (* mmap oracle reflecting emitted sends *)
  let emitted = Simnet.Address.Flow_table.create 4 in
  let r =
    ranker ~mmap:(fun f -> Simnet.Address.Flow_table.mem emitted f) logs
  in
  let order =
    let rec loop acc =
      match Ranker.rank r with
      | None -> List.rev acc
      | Some a ->
          if Activity.equal_kind a.Activity.kind Activity.Send then
            Simnet.Address.Flow_table.replace emitted a.Activity.message.flow ();
          loop (a :: acc)
    in
    loop []
  in
  Alcotest.(check int) "all four emitted" 4 (List.length order);
  let stats = Ranker.stats r in
  Alcotest.(check bool) "at least one promotion" true (stats.Ranker.promotions >= 1);
  Alcotest.(check int) "nothing discarded" 0 stats.noise_discarded;
  (* each send must precede its matching receive *)
  let pos flow kind =
    let rec idx i = function
      | [] -> -1
      | (a : Activity.t) :: rest ->
          if Activity.equal_kind a.kind kind && Simnet.Address.flow_equal a.message.flow flow
          then i
          else idx (i + 1) rest
    in
    idx 0 order
  in
  Alcotest.(check bool) "f12 causal" true (pos f12 Activity.Send < pos f12 Activity.Receive);
  Alcotest.(check bool) "f21 causal" true (pos f21 Activity.Send < pos f21 Activity.Receive)

let test_promotion_never_crosses_own_context () =
  (* A SEND must not be promoted over an earlier activity of its own
     context: queue n1 = [RECEIVE(ctx_x, flow_a); SEND(ctx_x, flow_b)],
     queue n2 head waits for flow_b. The ranker has to resolve n1's head
     some other way (here: noise-discard it), never reorder ctx_x. *)
  let flow_a = H.flow "9.9.9.9" 1 "10.0.0.1" 2 in
  let flow_b = H.flow "10.0.0.1" 3 "10.0.0.2" 4 in
  let ctx_x = H.ctx ~host:"n1" ~pid:1 ~tid:1 () in
  let ctx_y = H.ctx ~host:"n2" ~pid:2 ~tid:2 () in
  let n1 =
    [
      H.act ~kind:Activity.Receive ~ts:10 ~ctx:ctx_x ~flow:flow_a ~size:5;
      H.act ~kind:Activity.Send ~ts:12 ~ctx:ctx_x ~flow:flow_b ~size:5;
    ]
  in
  let n2 = [ H.act ~kind:Activity.Receive ~ts:11 ~ctx:ctx_y ~flow:flow_b ~size:5 ] in
  let logs = [ Log.of_list ~hostname:"n1" n1; Log.of_list ~hostname:"n2" n2 ] in
  let emitted = Simnet.Address.Flow_table.create 4 in
  let r = ranker ~mmap:(fun f -> Simnet.Address.Flow_table.mem emitted f) logs in
  let order =
    let rec loop acc =
      match Ranker.rank r with
      | None -> List.rev acc
      | Some a ->
          if Activity.equal_kind a.Activity.kind Activity.Send then
            Simnet.Address.Flow_table.replace emitted a.Activity.message.flow ();
          loop (a :: acc)
    in
    loop []
  in
  (* flow_a receive is noise (sender untraced); the other two correlate. *)
  Alcotest.(check int) "two candidates" 2 (List.length order);
  let stats = Ranker.stats r in
  Alcotest.(check int) "one noise discard" 1 stats.Ranker.noise_discarded;
  Alcotest.(check int) "no forced discards" 0 stats.forced_discards;
  match kinds order with
  | [ Activity.Send; Activity.Receive ] -> ()
  | _ -> Alcotest.fail "expected send then receive"

let test_noise_discard () =
  (* A lone RECEIVE with no sender anywhere is noise. *)
  let r = H.act ~kind:Activity.Receive ~ts:10 ~ctx:H.db_ctx ~flow:H.app_db_flow ~size:9 in
  let logs = [ Log.of_list ~hostname:"db" [ r ] ] in
  let rk = ranker logs in
  Alcotest.(check bool) "nothing emitted" true (drain rk = []);
  Alcotest.(check int) "discarded" 1 (Ranker.stats rk).Ranker.noise_discarded

let test_skew_does_not_misclassify () =
  (* The SEND's local timestamp is far ahead (receiver clock behind by
     400ms); with a 1ms window the ranker must defer and not declare the
     receive noise. *)
  let s = H.act ~kind:Activity.Send ~ts:400_000_000 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:5 in
  let r = H.act ~kind:Activity.Receive ~ts:1_000 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:5 in
  let logs = [ Log.of_list ~hostname:"web" [ s ]; Log.of_list ~hostname:"app" [ r ] ] in
  let rk, emitted = with_tracking_ranker ~window:(Sim_time.ms 1) logs in
  let order = drain_tracking rk emitted in
  Alcotest.(check int) "both emitted" 2 (List.length order);
  Alcotest.(check int) "no noise" 0 (Ranker.stats rk).Ranker.noise_discarded;
  match kinds order with
  | [ Activity.Send; Activity.Receive ] -> ()
  | _ -> Alcotest.fail "send must still precede receive"

let test_skew_beyond_allowance_is_noise () =
  (* If the matching send is further away than the allowance, the receive
     is (deliberately) classified as noise. *)
  let s = H.act ~kind:Activity.Send ~ts:2_000_000_000 ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:5 in
  let r = H.act ~kind:Activity.Receive ~ts:1_000 ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:5 in
  let logs = [ Log.of_list ~hostname:"web" [ s ]; Log.of_list ~hostname:"app" [ r ] ] in
  let rk = ranker ~window:(Sim_time.ms 1) ~skew_allowance:(Sim_time.ms 100) logs in
  let order = drain rk in
  Alcotest.(check int) "only the send emitted" 1 (List.length order);
  Alcotest.(check int) "receive discarded" 1 (Ranker.stats rk).Ranker.noise_discarded

let test_window_bounds_buffer () =
  (* With everything on one node and 1 activity per ms, a W-sized window
     should keep the buffer near W activities. *)
  let acts =
    List.init 1000 (fun i ->
        H.act ~kind:Activity.Send ~ts:(i * 1_000_000) ~ctx:H.web_ctx ~flow:H.web_app_flow
          ~size:(i + 1))
  in
  let logs = [ Log.of_list ~hostname:"web" acts ] in
  let small = ranker ~window:(Sim_time.ms 5) logs in
  ignore (drain small);
  let big = ranker ~window:(Sim_time.ms 500) logs in
  ignore (drain big);
  let ps = (Ranker.stats small).Ranker.peak_buffered in
  let pb = (Ranker.stats big).Ranker.peak_buffered in
  Alcotest.(check bool) "small window buffers less" true (ps < pb);
  Alcotest.(check bool) "small around 6" true (ps <= 10);
  Alcotest.(check bool) "big around 501" true (pb >= 400)

let test_empty_input () =
  let rk = ranker [ Log.of_list ~hostname:"x" [] ] in
  Alcotest.(check bool) "none" true (Ranker.rank rk = None);
  Alcotest.(check bool) "still none" true (Ranker.rank rk = None)

let test_invalid_window () =
  match ranker ~window:Sim_time.span_zero [ Log.of_list ~hostname:"x" [] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero window accepted"

(* Property: for a well-formed request trace under arbitrary per-node skew
   and any window, the ranker emits every activity exactly once and each
   SEND precedes its matched RECEIVE. We reuse the full correlator since
   rule 1 needs the real mmap. *)
let prop_ranker_complete_under_skew =
  QCheck.Test.make ~name:"ranker emits all activities, sends before receives" ~count:150
    QCheck.(
      triple
        (int_range 0 100_000_000 (* wskew ns *))
        (int_range 0 100_000_000)
        (int_range 1 50 (* window ms *)))
    (fun (askew, dskew, win_ms) ->
      let logs = H.logs_of_request ~askew ~dskew:(-dskew) () in
      let engine, _ranker = H.correlate_raw ~window:(Sim_time.ms win_ms) logs in
      let stats = Core.Cag_engine.stats engine in
      stats.Core.Cag_engine.cags_finished = 1
      && stats.unmatched_receives = 0
      && stats.orphans = 0)

let () =
  Alcotest.run "ranker"
    [
      ( "rules",
        [
          Alcotest.test_case "rule 2: send before receive" `Quick test_rule2_send_before_receive;
          Alcotest.test_case "rule 1: matched receive first" `Quick test_rule1_matched_receive_first;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "priority order (rule 2 only)" `Quick
            test_priority_order_rule2_only;
          Alcotest.test_case "same-queue order preserved" `Quick test_same_queue_order_preserved;
        ] );
      ( "disturbance",
        [
          Alcotest.test_case "concurrency swap (Fig. 6)" `Quick test_concurrency_disturbance_swap;
          Alcotest.test_case "promotion respects context order" `Quick
            test_promotion_never_crosses_own_context;
        ] );
      ( "noise",
        [
          Alcotest.test_case "lone receive discarded" `Quick test_noise_discard;
          Alcotest.test_case "skew not misclassified" `Quick test_skew_does_not_misclassify;
          Alcotest.test_case "beyond allowance is noise" `Quick test_skew_beyond_allowance_is_noise;
        ] );
      ( "window",
        [
          Alcotest.test_case "buffer scales with window" `Quick test_window_bounds_buffer;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "invalid window" `Quick test_invalid_window;
          qtest prop_ranker_complete_under_skew;
        ] );
    ]
