(* Full-system integration: simulate -> trace -> correlate -> score against
   the oracle, across the paper's §5.2 parameter grid (scaled down). *)

module H = Test_helpers.Helpers
module Scenario = Tiersim.Scenario
module Workload = Tiersim.Workload
module Faults = Tiersim.Faults
module Correlator = Core.Correlator
module Accuracy = Core.Accuracy
module Pattern = Core.Pattern
module Sim_time = Simnet.Sim_time

let base_spec =
  { Scenario.default with Scenario.clients = 40; time_scale = 0.02; seed = 123 }

let run_and_check ?window ?(expect_perfect = true) spec =
  let outcome = Scenario.run spec in
  let cfg = Correlator.config ~transform:outcome.Scenario.transform ?window () in
  let result = Correlator.correlate cfg outcome.Scenario.logs in
  let verdict = Accuracy.check ~ground_truth:outcome.ground_truth result.Correlator.cags in
  if expect_perfect then begin
    Alcotest.(check int) "no deformed paths" 0 (List.length result.deformed);
    if verdict.Accuracy.accuracy < 1.0 then
      Alcotest.failf "accuracy %.4f (%d/%d, fp %d fn %d)" verdict.accuracy verdict.correct
        verdict.total_requests verdict.false_positives verdict.false_negatives;
    Alcotest.(check int) "no false positives" 0 verdict.false_positives;
    Alcotest.(check int) "no forced discards" 0
      result.ranker_stats.Core.Ranker.forced_discards
  end;
  (outcome, result, verdict)

let test_accuracy_baseline () = ignore (run_and_check base_spec)

let test_accuracy_default_mix () =
  ignore (run_and_check { base_spec with Scenario.mix = Workload.Default })

let test_accuracy_windows () =
  (* §5.2: window from 1 ms to 10 s; accuracy stays 100%. *)
  List.iter
    (fun window -> ignore (run_and_check ~window base_spec))
    [ Sim_time.ms 1; Sim_time.ms 10; Sim_time.ms 100; Sim_time.sec 10 ]

let test_accuracy_skews () =
  (* §5.2: skew from 1 ms to 500 ms. *)
  List.iter
    (fun skew_ms ->
      ignore
        (run_and_check ~window:(Sim_time.ms 2)
           { base_spec with Scenario.skew = Sim_time.ms skew_ms }))
    [ 1; 50; 200; 500 ]

let test_accuracy_drift () =
  ignore (run_and_check { base_spec with Scenario.drift_ppm = 150.0 })

let test_accuracy_with_noise () =
  (* §5.2 / §5.3.3: rlogin+ssh+mysql-client noise; still 100%. *)
  let _, result, _ =
    run_and_check ~window:(Sim_time.ms 2)
      { base_spec with Scenario.noise = Scenario.Paper_noise { db_connections = 2 } }
  in
  Alcotest.(check bool) "noise was actually discarded" true
    (result.Correlator.ranker_stats.Core.Ranker.noise_discarded > 100)

let test_accuracy_noise_and_skew () =
  ignore
    (run_and_check ~window:(Sim_time.ms 2)
       {
         base_spec with
         Scenario.noise = Scenario.Paper_noise { db_connections = 2 };
         skew = Sim_time.ms 300;
       })

let test_accuracy_under_faults () =
  (* Fault injection perturbs timing but must not break correlation. *)
  List.iter
    (fun faults -> ignore (run_and_check { base_spec with Scenario.faults }))
    [ [ Faults.ejb_delay ]; [ Faults.database_lock ]; [ Faults.ejb_network ] ]

let test_accuracy_single_kind () =
  let outcome, result, _ =
    run_and_check { base_spec with Scenario.only_kind = Some "ViewItem" }
  in
  ignore outcome;
  (* all paths share the ViewItem shape: one dominant pattern *)
  match Pattern.classify result.Correlator.cags with
  | [ p ] ->
      Alcotest.(check string) "ViewItem route" "httpd>java>mysqld>java>mysqld>java>httpd"
        p.Pattern.name
  | ps -> Alcotest.failf "expected one pattern, got %d" (List.length ps)

let test_loss_degrades_gracefully () =
  let outcome = Scenario.run base_spec in
  let rng = Simnet.Rng.create ~seed:77 in
  let lossy = Trace.Loss.drop ~rng ~p:0.02 outcome.Scenario.logs in
  let cfg = Correlator.config ~transform:outcome.transform () in
  let result = Correlator.correlate cfg lossy in
  let verdict = Accuracy.check ~ground_truth:outcome.ground_truth result.Correlator.cags in
  let n = verdict.Accuracy.total_requests in
  Alcotest.(check bool) "most paths survive 2% loss" true
    (verdict.correct > n / 2);
  Alcotest.(check bool) "loss visible as deformed/incorrect paths" true
    (verdict.correct < n)

let test_correlation_time_scales_linearly () =
  (* Fig. 9's claim, as an order check: 4x requests => roughly 4x time,
     certainly not quadratic. *)
  let t_of clients =
    let outcome = Scenario.run { base_spec with Scenario.clients; seed = 5 } in
    let cfg = Correlator.config ~transform:outcome.Scenario.transform () in
    let result = Correlator.correlate cfg outcome.Scenario.logs in
    ( result.Correlator.correlation_time,
      List.length result.Correlator.cags )
  in
  let t1, n1 = t_of 20 in
  let t4, n4 = t_of 80 in
  Alcotest.(check bool) "more requests" true (n4 > 2 * n1);
  (* generous bound: time ratio under 4x the request ratio *)
  let per_req1 = t1 /. float_of_int n1 and per_req4 = t4 /. float_of_int n4 in
  Alcotest.(check bool) "near-linear per-request cost" true (per_req4 < 6.0 *. per_req1)

let test_all_cags_structurally_valid () =
  let _, result, _ = run_and_check { base_spec with Scenario.clients = 60 } in
  List.iter H.check_valid result.Correlator.cags

let test_patterns_cover_all_requests () =
  let _, result, _ = run_and_check base_spec in
  let patterns = Pattern.classify result.Correlator.cags in
  let covered = List.fold_left (fun acc p -> acc + Pattern.count p) 0 patterns in
  Alcotest.(check int) "partition" (List.length result.Correlator.cags) covered

let () =
  Alcotest.run "integration"
    [
      ( "accuracy grid (paper 5.2)",
        [
          Alcotest.test_case "baseline" `Quick test_accuracy_baseline;
          Alcotest.test_case "default mix" `Quick test_accuracy_default_mix;
          Alcotest.test_case "window sweep" `Quick test_accuracy_windows;
          Alcotest.test_case "skew sweep" `Quick test_accuracy_skews;
          Alcotest.test_case "clock drift" `Quick test_accuracy_drift;
          Alcotest.test_case "with noise" `Quick test_accuracy_with_noise;
          Alcotest.test_case "noise and skew" `Quick test_accuracy_noise_and_skew;
          Alcotest.test_case "under faults" `Quick test_accuracy_under_faults;
          Alcotest.test_case "single kind" `Quick test_accuracy_single_kind;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "activity loss" `Quick test_loss_degrades_gracefully;
          Alcotest.test_case "correlation time linear" `Quick
            test_correlation_time_scales_linearly;
        ] );
      ( "structure",
        [
          Alcotest.test_case "all CAGs valid" `Quick test_all_cags_structurally_valid;
          Alcotest.test_case "patterns partition paths" `Quick test_patterns_cover_all_requests;
        ] );
    ]
