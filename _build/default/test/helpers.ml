(* Shared constructors for hand-built activity streams. *)

module Activity = Trace.Activity
module Address = Simnet.Address
module Sim_time = Simnet.Sim_time

let ip = Address.ip_of_string

let ep ip_s port = Address.endpoint (ip ip_s) port

let flow src_ip src_port dst_ip dst_port =
  Address.flow ~src:(ep src_ip src_port) ~dst:(ep dst_ip dst_port)

let ctx ?(host = "node1") ?(program = "prog") ?(pid = 100) ?(tid = 100) () =
  { Activity.host; program; pid; tid }

let act ~kind ~ts ~ctx:context ~flow ~size =
  {
    Activity.kind;
    timestamp = Sim_time.of_ns ts;
    context;
    message = { Activity.flow; size };
  }

(* Contexts of a canonical two-node pair. *)
let web_ctx = ctx ~host:"web" ~program:"httpd" ~pid:10 ~tid:10 ()
let app_ctx = ctx ~host:"app" ~program:"java" ~pid:20 ~tid:21 ()
let db_ctx = ctx ~host:"db" ~program:"mysqld" ~pid:30 ~tid:31 ()

let client_web_flow = flow "10.0.0.1" 40000 "10.0.1.1" 80
let web_client_flow = Address.reverse client_web_flow
let web_app_flow = flow "10.0.1.1" 41000 "10.0.2.1" 8009
let app_web_flow = Address.reverse web_app_flow
let app_db_flow = flow "10.0.2.1" 42000 "10.0.3.1" 3306
let db_app_flow = Address.reverse app_db_flow

(* A complete, well-formed request trace: BEGIN at web, call to app, call to
   db, replies, END — one activity per message. Timestamps offset by [base]
   nanoseconds; [wskew]/[askew]/[dskew] shift each node's local clock. *)
let simple_request ?(base = 0) ?(wskew = 0) ?(askew = 0) ?(dskew = 0) () =
  let w t = base + t + wskew and a t = base + t + askew and d t = base + t + dskew in
  ( [
      act ~kind:Activity.Begin ~ts:(w 0) ~ctx:web_ctx ~flow:client_web_flow ~size:400;
      act ~kind:Activity.Send ~ts:(w 1_000_000) ~ctx:web_ctx ~flow:web_app_flow ~size:500;
      act ~kind:Activity.Receive ~ts:(w 8_000_000) ~ctx:web_ctx ~flow:app_web_flow ~size:2000;
      act ~kind:Activity.End_ ~ts:(w 9_000_000) ~ctx:web_ctx ~flow:web_client_flow ~size:2400;
    ],
    [
      act ~kind:Activity.Receive ~ts:(a 2_000_000) ~ctx:app_ctx ~flow:web_app_flow ~size:500;
      act ~kind:Activity.Send ~ts:(a 3_000_000) ~ctx:app_ctx ~flow:app_db_flow ~size:300;
      act ~kind:Activity.Receive ~ts:(a 6_000_000) ~ctx:app_ctx ~flow:db_app_flow ~size:1500;
      act ~kind:Activity.Send ~ts:(a 7_000_000) ~ctx:app_ctx ~flow:app_web_flow ~size:2000;
    ],
    [
      act ~kind:Activity.Receive ~ts:(d 4_000_000) ~ctx:db_ctx ~flow:app_db_flow ~size:300;
      act ~kind:Activity.Send ~ts:(d 5_000_000) ~ctx:db_ctx ~flow:db_app_flow ~size:1500;
    ] )

let logs_of_request ?base ?wskew ?askew ?dskew () =
  let w, a, d = simple_request ?base ?wskew ?askew ?dskew () in
  [
    Trace.Log.of_list ~hostname:"web" w;
    Trace.Log.of_list ~hostname:"app" a;
    Trace.Log.of_list ~hostname:"db" d;
  ]

let correlate_raw ?(window = Sim_time.ms 10) ?skew_allowance logs =
  let engine = Core.Cag_engine.create () in
  let ranker =
    Core.Ranker.create ~window ?skew_allowance
      ~has_mmap_send:(Core.Cag_engine.has_mmap_send engine)
      logs
  in
  let rec loop () =
    match Core.Ranker.rank ranker with
    | None -> ()
    | Some a ->
        Core.Cag_engine.step engine a;
        loop ()
  in
  loop ();
  (engine, ranker)

let check_valid cag =
  match Core.Cag.validate cag with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid CAG: %s" e

let contains s sub =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

let span_testable =
  Alcotest.testable Sim_time.pp_span (fun a b -> Sim_time.compare_span a b = 0)
