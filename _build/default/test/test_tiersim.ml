(* Tests for the multi-tier service simulator. *)

module H = Test_helpers.Helpers
module Locking = Tiersim.Locking
module Semaphore = Tiersim.Semaphore
module Metrics = Tiersim.Metrics
module Workload = Tiersim.Workload
module Worker_pool = Tiersim.Worker_pool
module Faults = Tiersim.Faults
module Service = Tiersim.Service
module Scenario = Tiersim.Scenario
module Engine = Simnet.Engine
module Node = Simnet.Node
module Rng = Simnet.Rng
module Sim_time = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

(* ---- Locking ---- *)

let test_mutex_fifo () =
  let engine = Engine.create () in
  let lock = Locking.create ~engine in
  let order = ref [] in
  let enter tag =
    Locking.acquire lock (fun () ->
        order := tag :: !order;
        ignore
          (Engine.schedule_after engine ~delay:(Sim_time.ms 1) (fun () ->
               Locking.release lock)))
  in
  enter "a";
  enter "b";
  enter "c";
  Alcotest.(check int) "two waiting" 2 (Locking.waiting lock);
  Engine.run engine;
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int) "peak waiters" 2 (Locking.peak_waiting lock)

let test_mutex_release_unheld () =
  let engine = Engine.create () in
  let lock = Locking.create ~engine in
  match Locking.release lock with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "release of unheld lock accepted"

let test_with_lock () =
  let engine = Engine.create () in
  let lock = Locking.create ~engine in
  let done_count = ref 0 in
  for _ = 1 to 3 do
    Locking.with_lock lock ~critical:(fun finish ->
        ignore
          (Engine.schedule_after engine ~delay:(Sim_time.ms 1) (fun () ->
               incr done_count;
               finish ())))
  done;
  Engine.run engine;
  Alcotest.(check int) "all ran" 3 !done_count;
  Alcotest.(check int) "final time serialized" 3_000_000 (Sim_time.to_ns (Engine.now engine))

(* ---- Semaphore ---- *)

let test_semaphore_capacity () =
  let engine = Engine.create () in
  let sem = Semaphore.create ~engine ~capacity:2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 5 do
    Semaphore.acquire sem (fun () ->
        incr active;
        if !active > !peak then peak := !active;
        ignore
          (Engine.schedule_after engine ~delay:(Sim_time.ms 1) (fun () ->
               decr active;
               Semaphore.release sem)))
  done;
  Alcotest.(check int) "waiting" 3 (Semaphore.waiting sem);
  Engine.run engine;
  Alcotest.(check int) "capacity respected" 2 !peak;
  Alcotest.(check int) "drained" 0 (Semaphore.waiting sem);
  Alcotest.(check int) "peak waiting" 3 (Semaphore.peak_waiting sem)

let test_semaphore_release_unheld () =
  let engine = Engine.create () in
  let sem = Semaphore.create ~engine ~capacity:1 in
  match Semaphore.release sem with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "release of empty semaphore accepted"

let prop_semaphore_model =
  QCheck.Test.make ~name:"semaphore never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 5) (list_of_size (Gen.int_range 1 20) (int_range 1 5)))
    (fun (capacity, holds_ms) ->
      let engine = Engine.create () in
      let sem = Semaphore.create ~engine ~capacity in
      let active = ref 0 and ok = ref true and completed = ref 0 in
      List.iter
        (fun hold ->
          Semaphore.acquire sem (fun () ->
              incr active;
              if !active > capacity then ok := false;
              ignore
                (Engine.schedule_after engine ~delay:(Sim_time.ms hold) (fun () ->
                     decr active;
                     incr completed;
                     Semaphore.release sem))))
        holds_ms;
      Engine.run engine;
      !ok && !completed = List.length holds_ms && Semaphore.waiting sem = 0)

let prop_mutex_mutual_exclusion =
  QCheck.Test.make ~name:"mutex holds one owner at a time" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 15) (int_range 1 5))
    (fun holds_ms ->
      let engine = Engine.create () in
      let lock = Locking.create ~engine in
      let inside = ref 0 and ok = ref true and completed = ref 0 in
      List.iter
        (fun hold ->
          Locking.acquire lock (fun () ->
              incr inside;
              if !inside > 1 then ok := false;
              ignore
                (Engine.schedule_after engine ~delay:(Sim_time.ms hold) (fun () ->
                     decr inside;
                     incr completed;
                     Locking.release lock))))
        holds_ms;
      Engine.run engine;
      !ok && !completed = List.length holds_ms)

(* ---- Metrics ---- *)

let test_metrics_summary () =
  let m = Metrics.create () in
  List.iteri
    (fun i rt_ms ->
      Metrics.record m
        ~finished_at:(Sim_time.of_ns ((i + 1) * 1_000_000_000))
        ~rt:(Sim_time.ms rt_ms) ~kind:"X")
    [ 10; 20; 30; 40 ];
  let s =
    Metrics.summarize ~from_ts:Sim_time.zero
      ~until_ts:(Sim_time.of_ns 4_000_000_000)
      m
  in
  Alcotest.(check int) "completed" 4 s.Metrics.completed;
  Alcotest.(check (float 1e-9)) "throughput" 1.0 s.throughput_rps;
  Alcotest.(check (float 1e-9)) "mean" 0.025 s.mean_rt_s;
  Alcotest.(check (float 1e-9)) "max" 0.040 s.max_rt_s

let test_metrics_window () =
  let m = Metrics.create () in
  List.iter
    (fun at ->
      Metrics.record m ~finished_at:(Sim_time.of_ns at) ~rt:(Sim_time.ms 1) ~kind:"X")
    [ 100; 200; 300; 400 ];
  let s = Metrics.summarize ~from_ts:(Sim_time.of_ns 150) ~until_ts:(Sim_time.of_ns 350) m in
  Alcotest.(check int) "two inside" 2 s.Metrics.completed

let test_metrics_kinds () =
  let m = Metrics.create () in
  Metrics.record m ~finished_at:(Sim_time.of_ns 1) ~rt:(Sim_time.ms 1) ~kind:"A";
  Metrics.record m ~finished_at:(Sim_time.of_ns 2) ~rt:(Sim_time.ms 2) ~kind:"B";
  Metrics.record m ~finished_at:(Sim_time.of_ns 3) ~rt:(Sim_time.ms 3) ~kind:"A";
  Alcotest.(check (list string)) "kinds" [ "A"; "B" ] (Metrics.kinds m);
  let a = Metrics.summarize_kind m ~kind:"A" in
  Alcotest.(check int) "A count" 2 a.Metrics.completed

(* ---- Workload ---- *)

let test_workload_weights_positive () =
  List.iter
    (fun mix ->
      let classes = Workload.class_names mix in
      Alcotest.(check bool) "non-empty" true (classes <> []);
      List.iter (fun (_, w) -> Alcotest.(check bool) "weight > 0" true (w > 0.0)) classes)
    [ Workload.Browse_only; Workload.Default ]

let test_workload_browse_has_no_writes () =
  let rng = Rng.create ~seed:1 in
  for i = 0 to 200 do
    let plan = Workload.sample rng Workload.Browse_only ~id:i in
    Alcotest.(check bool) "read class" true
      (not (List.mem plan.Workload.kind [ "PutBid"; "StoreBid"; "PutComment"; "RegisterUser" ]))
  done

let test_workload_default_has_writes () =
  let rng = Rng.create ~seed:1 in
  let writes = ref 0 in
  for i = 0 to 500 do
    let plan = Workload.sample rng Workload.Default ~id:i in
    if List.mem plan.Workload.kind [ "PutBid"; "StoreBid"; "PutComment"; "RegisterUser" ] then
      incr writes
  done;
  Alcotest.(check bool) "writes ~15%" true (!writes > 30 && !writes < 140)

let test_workload_plan_sane () =
  let rng = Rng.create ~seed:2 in
  for i = 0 to 100 do
    let plan = Workload.sample rng Workload.Default ~id:i in
    Alcotest.(check bool) "sizes positive" true
      (plan.Workload.request_size > 0 && plan.app_request_size > 0
      && plan.app_response_size > 0
      && plan.response_size >= plan.app_response_size);
    Alcotest.(check bool) "queries 1..3" true
      (List.length plan.queries >= 1 && List.length plan.queries <= 3);
    Alcotest.(check int) "id carried" i plan.id
  done

let test_workload_sample_kind () =
  let rng = Rng.create ~seed:3 in
  let plan = Workload.sample_kind rng ~kind:"ViewItem" ~id:7 in
  Alcotest.(check string) "kind" "ViewItem" plan.Workload.kind;
  Alcotest.(check int) "two queries" 2 (List.length plan.queries);
  match Workload.sample_kind rng ~kind:"NoSuchClass" ~id:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown class accepted"

let test_workload_viewitem_locks_items () =
  let rng = Rng.create ~seed:4 in
  let plan = Workload.sample_kind rng ~kind:"ViewItem" ~id:1 in
  Alcotest.(check bool) "touches items table" true
    (List.exists (fun q -> q.Workload.locks_items) plan.Workload.queries)

(* ---- Worker_pool ---- *)

let pool_fixture ~capacity:_ ~identity:_ =
  let engine = Engine.create () in
  let node =
    Node.create ~engine ~hostname:"n" ~ip:(Simnet.Address.ip_of_string "10.0.0.1") ~cores:2 ()
  in
  (engine, node)

let test_pool_dispatch_and_queue () =
  let engine, node = pool_fixture ~capacity:2 ~identity:Worker_pool.Threads in
  let served = ref [] in
  let pool =
    Worker_pool.create ~node ~program:"srv" ~capacity:2 ~identity:Worker_pool.Threads
      ~serve:(fun proc job ~release ->
        served := (proc.Simnet.Proc.tid, job) :: !served;
        ignore (Engine.schedule_after engine ~delay:(Sim_time.ms 1) release))
  in
  List.iter (Worker_pool.dispatch pool) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "busy" 2 (Worker_pool.busy pool);
  Alcotest.(check int) "queued" 2 (Worker_pool.queued pool);
  Engine.run engine;
  Alcotest.(check int) "all served" 4 (Worker_pool.total_served pool);
  Alcotest.(check int) "peak queue" 2 (Worker_pool.peak_queued pool);
  (* worker identities recycled: only 2 distinct tids *)
  let tids = List.sort_uniq compare (List.map fst !served) in
  Alcotest.(check int) "two workers" 2 (List.length tids)

let test_pool_identities () =
  let _, node = pool_fixture ~capacity:3 ~identity:Worker_pool.Processes in
  let seen = ref [] in
  let pool =
    Worker_pool.create ~node ~program:"srv" ~capacity:3 ~identity:Worker_pool.Processes
      ~serve:(fun proc job ~release ->
        ignore job;
        seen := proc :: !seen;
        release ())
  in
  List.iter (Worker_pool.dispatch pool) [ (); (); () ];
  (* process workers: pid = tid and distinct pids... but recycled since
     release is synchronous; force three live by not releasing. *)
  Alcotest.(check bool) "pids match tids" true
    (List.for_all (fun (p : Simnet.Proc.t) -> p.Simnet.Proc.pid = p.Simnet.Proc.tid) !seen)

let test_pool_thread_identity_shares_pid () =
  let engine, node = pool_fixture ~capacity:3 ~identity:Worker_pool.Threads in
  let seen = ref [] in
  let pool =
    Worker_pool.create ~node ~program:"srv" ~capacity:3 ~identity:Worker_pool.Threads
      ~serve:(fun proc job ~release ->
        ignore job;
        seen := proc :: !seen;
        ignore (Engine.schedule_after engine ~delay:(Sim_time.ms 1) release))
  in
  List.iter (Worker_pool.dispatch pool) [ (); (); () ];
  Engine.run engine;
  let pids = List.sort_uniq compare (List.map (fun (p : Simnet.Proc.t) -> p.Simnet.Proc.pid) !seen) in
  let tids = List.sort_uniq compare (List.map (fun (p : Simnet.Proc.t) -> p.Simnet.Proc.tid) !seen) in
  Alcotest.(check int) "one pid" 1 (List.length pids);
  Alcotest.(check int) "three tids" 3 (List.length tids)

(* ---- Faults ---- *)

let test_fault_names () =
  Alcotest.(check (list string)) "paper labels"
    [ "EJB_Delay"; "Database_Lock"; "EJB_Network" ]
    (List.map Faults.name [ Faults.ejb_delay; Faults.database_lock; Faults.ejb_network ])

(* ---- Service + Client end to end ---- *)

let small_spec =
  { Scenario.default with Scenario.clients = 20; time_scale = 0.02; seed = 9 }

let test_scenario_runs_and_completes () =
  let outcome = Scenario.run small_spec in
  let total = Metrics.total_recorded outcome.Scenario.metrics in
  Alcotest.(check bool) "requests completed" true (total > 20);
  Alcotest.(check int) "oracle agrees" total
    (Trace.Ground_truth.count outcome.ground_truth);
  Alcotest.(check bool) "activities captured" true (outcome.activity_count > total * 8);
  Alcotest.(check int) "three server logs" 3 (List.length outcome.logs)

let test_scenario_deterministic () =
  let a = Scenario.run small_spec in
  let b = Scenario.run small_spec in
  Alcotest.(check int) "same requests"
    (Metrics.total_recorded a.Scenario.metrics)
    (Metrics.total_recorded b.Scenario.metrics);
  Alcotest.(check int) "same activities" a.activity_count b.activity_count;
  Alcotest.(check int) "same events" a.sim_events b.sim_events

let test_scenario_seed_changes_run () =
  let a = Scenario.run small_spec in
  let b = Scenario.run { small_spec with Scenario.seed = 10 } in
  Alcotest.(check bool) "different seed, different trace" true
    (a.Scenario.activity_count <> b.Scenario.activity_count
    || Metrics.total_recorded a.metrics <> Metrics.total_recorded b.metrics)

let test_scenario_tracing_off () =
  let outcome = Scenario.run { small_spec with Scenario.tracing = false } in
  Alcotest.(check int) "no activities" 0 outcome.Scenario.activity_count;
  Alcotest.(check bool) "service still works" true
    (Metrics.total_recorded outcome.metrics > 0)

let test_scenario_ejb_network_slows_transfers () =
  let normal = Scenario.run small_spec in
  let degraded =
    Scenario.run { small_spec with Scenario.faults = [ Faults.ejb_network ] }
  in
  Alcotest.(check bool) "mean RT worse on 10 Mbps" true
    (degraded.Scenario.summary.Metrics.mean_rt_s > normal.Scenario.summary.Metrics.mean_rt_s)

let test_scenario_ejb_delay_slows () =
  let normal = Scenario.run small_spec in
  let delayed = Scenario.run { small_spec with Scenario.faults = [ Faults.ejb_delay ] } in
  Alcotest.(check bool) "mean RT worse with EJB delay" true
    (delayed.Scenario.summary.Metrics.mean_rt_s
    > normal.Scenario.summary.Metrics.mean_rt_s +. 0.02)

let test_scenario_db_lock_slows_writes () =
  let spec = { small_spec with Scenario.mix = Workload.Browse_only } in
  let normal = Scenario.run spec in
  let locked = Scenario.run { spec with Scenario.faults = [ Faults.database_lock ] } in
  Alcotest.(check bool) "locking raises RT" true
    (locked.Scenario.summary.Metrics.mean_rt_s > normal.Scenario.summary.Metrics.mean_rt_s)

let test_max_threads_bottleneck () =
  (* Many clients on a tiny thread pool: RT inflates vs an ample pool. *)
  let spec = { small_spec with Scenario.clients = 120; time_scale = 0.02 } in
  let tight = Scenario.run { spec with Scenario.max_threads = 4 } in
  let ample = Scenario.run { spec with Scenario.max_threads = 250 } in
  Alcotest.(check bool) "tight pool slower" true
    (tight.Scenario.summary.Metrics.mean_rt_s
    > 2.0 *. ample.Scenario.summary.Metrics.mean_rt_s);
  Alcotest.(check bool) "queue observed" true (tight.app.Service.peak_queued_jobs > 0)

let test_probe_overhead_visible () =
  let on = Scenario.run small_spec in
  let off = Scenario.run { small_spec with Scenario.tracing = false } in
  let d = on.Scenario.summary.Metrics.mean_rt_s -. off.Scenario.summary.Metrics.mean_rt_s in
  Alcotest.(check bool) "tracing adds a small delay" true (d > 0.0);
  Alcotest.(check bool) "but under 30%" true
    (d < 0.3 *. off.Scenario.summary.Metrics.mean_rt_s)

let prop_scenario_gt_consistent =
  QCheck.Test.make ~name:"oracle visits are well-formed for any seed" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let outcome = Scenario.run { small_spec with Scenario.seed; clients = 8 } in
      List.for_all
        (fun (r : Trace.Ground_truth.request) ->
          r.visits <> []
          && List.for_all
               (fun (v : Trace.Ground_truth.visit) -> Sim_time.(v.begin_ts <= v.end_ts))
               r.visits
          && String.equal (List.hd r.visits).context.Trace.Activity.program "httpd")
        (Trace.Ground_truth.requests outcome.Scenario.ground_truth))

let () =
  Alcotest.run "tiersim"
    [
      ( "locking",
        [
          Alcotest.test_case "fifo mutex" `Quick test_mutex_fifo;
          Alcotest.test_case "release unheld" `Quick test_mutex_release_unheld;
          Alcotest.test_case "with_lock" `Quick test_with_lock;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "capacity" `Quick test_semaphore_capacity;
          Alcotest.test_case "release unheld" `Quick test_semaphore_release_unheld;
          qtest prop_semaphore_model;
          qtest prop_mutex_mutual_exclusion;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "summary" `Quick test_metrics_summary;
          Alcotest.test_case "window" `Quick test_metrics_window;
          Alcotest.test_case "kinds" `Quick test_metrics_kinds;
        ] );
      ( "workload",
        [
          Alcotest.test_case "weights positive" `Quick test_workload_weights_positive;
          Alcotest.test_case "browse mix read-only" `Quick test_workload_browse_has_no_writes;
          Alcotest.test_case "default mix has writes" `Quick test_workload_default_has_writes;
          Alcotest.test_case "plans sane" `Quick test_workload_plan_sane;
          Alcotest.test_case "sample_kind" `Quick test_workload_sample_kind;
          Alcotest.test_case "ViewItem locks items" `Quick test_workload_viewitem_locks_items;
        ] );
      ( "worker_pool",
        [
          Alcotest.test_case "dispatch and queue" `Quick test_pool_dispatch_and_queue;
          Alcotest.test_case "process identities" `Quick test_pool_identities;
          Alcotest.test_case "thread identities share pid" `Quick
            test_pool_thread_identity_shares_pid;
        ] );
      ("faults", [ Alcotest.test_case "names" `Quick test_fault_names ]);
      ( "scenario",
        [
          Alcotest.test_case "runs to completion" `Quick test_scenario_runs_and_completes;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_scenario_seed_changes_run;
          Alcotest.test_case "tracing off" `Quick test_scenario_tracing_off;
          Alcotest.test_case "EJB_Network slows" `Quick test_scenario_ejb_network_slows_transfers;
          Alcotest.test_case "EJB_Delay slows" `Quick test_scenario_ejb_delay_slows;
          Alcotest.test_case "Database_Lock slows" `Quick test_scenario_db_lock_slows_writes;
          Alcotest.test_case "MaxThreads bottleneck" `Quick test_max_threads_bottleneck;
          Alcotest.test_case "probe overhead small" `Quick test_probe_overhead_visible;
          qtest prop_scenario_gt_consistent;
        ] );
    ]
