(* Tests for the deque and the component activity graph structure. *)

module H = Test_helpers.Helpers
module Deque = Core.Deque
module Cag = Core.Cag
module Activity = Trace.Activity
module Sim_time = Simnet.Sim_time

let qtest = QCheck_alcotest.to_alcotest

(* ---- Deque ---- *)

let test_deque_fifo () =
  let d = Deque.create () in
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  List.iter (Deque.push_back d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Deque.length d);
  Alcotest.(check (option int)) "peek" (Some 1) (Deque.peek_front d);
  let a = Deque.pop_front d in
  let b = Deque.pop_front d in
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] [ a; b ];
  Alcotest.(check int) "remaining" 1 (Deque.length d)

let test_deque_push_front () =
  let d = Deque.create () in
  Deque.push_back d 2;
  Deque.push_front d 1;
  Deque.push_back d 3;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Deque.to_list d)

let test_deque_promote () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 10; 20; 30; 40 ];
  Deque.promote d 2;
  Alcotest.(check (list int)) "30 promoted" [ 30; 10; 20; 40 ] (Deque.to_list d);
  Deque.promote d 0;
  Alcotest.(check (list int)) "promote head is a no-op" [ 30; 10; 20; 40 ] (Deque.to_list d)

let test_deque_promote_swap () =
  (* The paper's Fig. 6 head swap is promote at index 1. *)
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 1; 2 ];
  Deque.promote d 1;
  Alcotest.(check (list int)) "swapped" [ 2; 1 ] (Deque.to_list d)

let test_deque_find_get () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 5; 6; 7 ];
  Alcotest.(check (option int)) "found" (Some 2) (Deque.find_index d (fun x -> x = 7));
  Alcotest.(check (option int)) "missing" None (Deque.find_index d (fun x -> x = 9));
  Alcotest.(check int) "get" 6 (Deque.get d 1);
  (match Deque.get d 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oob accepted");
  match Deque.pop_front (Deque.create ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pop accepted"

let test_deque_wraparound () =
  (* Force head wrap by interleaving push/pop beyond initial capacity. *)
  let d = Deque.create () in
  for i = 0 to 99 do
    Deque.push_back d i;
    if i mod 2 = 1 then ignore (Deque.pop_front d)
  done;
  Alcotest.(check int) "length" 50 (Deque.length d);
  Alcotest.(check (option int)) "front" (Some 50) (Deque.peek_front d);
  Alcotest.(check int) "back via get" 99 (Deque.get d 49)

let prop_deque_model =
  (* Model-based: a deque fed random ops behaves like a list. *)
  QCheck.Test.make ~name:"deque behaves like a list model" ~count:300
    QCheck.(list (int_range 0 4))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Deque.push_back d !counter;
              model := !model @ [ !counter ]
          | 1 ->
              incr counter;
              Deque.push_front d !counter;
              model := !counter :: !model
          | 2 -> (
              match !model with
              | [] -> ()
              | x :: rest ->
                  if Deque.pop_front d <> x then ok := false;
                  model := rest)
          | 3 ->
              if !model <> [] then begin
                let i = List.length !model / 2 in
                Deque.promote d i;
                let x = List.nth !model i in
                model := x :: List.filteri (fun j _ -> j <> i) !model
              end
          | _ -> if Deque.to_list d <> !model then ok := false)
        ops;
      !ok && Deque.to_list d = !model)

(* ---- CAG construction ---- *)

let mk_send ts = H.act ~kind:Activity.Send ~ts ~ctx:H.web_ctx ~flow:H.web_app_flow ~size:100
let mk_recv ts = H.act ~kind:Activity.Receive ~ts ~ctx:H.app_ctx ~flow:H.web_app_flow ~size:100
let mk_begin ts = H.act ~kind:Activity.Begin ~ts ~ctx:H.web_ctx ~flow:H.client_web_flow ~size:50
let mk_end ts = H.act ~kind:Activity.End_ ~ts ~ctx:H.web_ctx ~flow:H.web_client_flow ~size:70

let test_cag_build_minimal () =
  let root = Cag.Builder.fresh_vertex (mk_begin 0) in
  let cag = Cag.Builder.create ~cag_id:1 root in
  let s = Cag.Builder.fresh_vertex (mk_send 10) in
  Cag.Builder.adopt cag s;
  Cag.Builder.add_edge Cag.Context_edge ~parent:root ~child:s;
  let r = Cag.Builder.fresh_vertex (mk_recv 20) in
  Cag.Builder.adopt cag r;
  Cag.Builder.add_edge Cag.Message_edge ~parent:s ~child:r;
  Alcotest.(check int) "size" 3 (Cag.size cag);
  Alcotest.(check bool) "not finished" false (Cag.is_finished cag);
  H.check_valid cag;
  Alcotest.(check int) "edges" 2 (List.length (Cag.edges cag));
  Alcotest.(check int) "contexts" 2 (List.length (Cag.contexts cag))

let test_cag_duration () =
  let root = Cag.Builder.fresh_vertex (mk_begin 100) in
  let cag = Cag.Builder.create ~cag_id:2 root in
  let e = Cag.Builder.fresh_vertex (mk_end 900) in
  Cag.Builder.adopt cag e;
  Cag.Builder.add_edge Cag.Context_edge ~parent:root ~child:e;
  Cag.Builder.finish cag;
  Alcotest.(check bool) "finished" true (Cag.is_finished cag);
  Alcotest.(check int) "duration" 800 (Sim_time.span_ns (Cag.duration cag));
  H.check_valid cag

let test_cag_two_parent_rule () =
  let root = Cag.Builder.fresh_vertex (mk_begin 0) in
  let cag = Cag.Builder.create ~cag_id:3 root in
  let s = Cag.Builder.fresh_vertex (mk_send 10) in
  Cag.Builder.adopt cag s;
  Cag.Builder.add_edge Cag.Context_edge ~parent:root ~child:s;
  (* a RECEIVE may get both a message and a context parent *)
  let prev =
    Cag.Builder.fresh_vertex
      (H.act ~kind:Activity.Send ~ts:5 ~ctx:H.app_ctx ~flow:H.app_db_flow ~size:10)
  in
  Cag.Builder.adopt cag prev;
  Cag.Builder.add_edge Cag.Context_edge ~parent:root ~child:prev;
  let r = Cag.Builder.fresh_vertex (mk_recv 20) in
  Cag.Builder.adopt cag r;
  Cag.Builder.add_edge Cag.Message_edge ~parent:s ~child:r;
  Cag.Builder.add_edge Cag.Context_edge ~parent:prev ~child:r;
  Alcotest.(check int) "two parents" 2 (List.length r.Cag.parents);
  H.check_valid cag;
  (* a third parent must be rejected *)
  match Cag.Builder.add_edge Cag.Message_edge ~parent:root ~child:r with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "third parent accepted"

let test_cag_non_receive_single_parent () =
  let root = Cag.Builder.fresh_vertex (mk_begin 0) in
  let cag = Cag.Builder.create ~cag_id:4 root in
  let s = Cag.Builder.fresh_vertex (mk_send 10) in
  Cag.Builder.adopt cag s;
  Cag.Builder.add_edge Cag.Context_edge ~parent:root ~child:s;
  let other = Cag.Builder.fresh_vertex (mk_send 11) in
  Cag.Builder.adopt cag other;
  Cag.Builder.add_edge Cag.Context_edge ~parent:root ~child:other;
  match Cag.Builder.add_edge Cag.Message_edge ~parent:other ~child:s with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "two parents on a SEND accepted"

let test_cag_double_adopt_rejected () =
  let root = Cag.Builder.fresh_vertex (mk_begin 0) in
  let cag = Cag.Builder.create ~cag_id:5 root in
  let v = Cag.Builder.fresh_vertex (mk_send 1) in
  Cag.Builder.adopt cag v;
  match Cag.Builder.adopt cag v with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double adopt accepted"

let test_cag_grow_and_consume () =
  let s = Cag.Builder.fresh_vertex (mk_send 0) in
  Alcotest.(check int) "initial unreceived" 100 s.Cag.unreceived;
  Cag.Builder.grow_send s 50;
  Alcotest.(check int) "grown size" 150 s.Cag.activity.Activity.message.size;
  Alcotest.(check int) "grown unreceived" 150 s.Cag.unreceived;
  Alcotest.(check int) "after consume" 30 (Cag.Builder.consume s 120);
  Alcotest.(check int) "consume to zero" 0 (Cag.Builder.consume s 30)

let test_cag_validate_catches_unreachable () =
  let root = Cag.Builder.fresh_vertex (mk_begin 0) in
  let cag = Cag.Builder.create ~cag_id:6 root in
  let lone = Cag.Builder.fresh_vertex (mk_send 10) in
  Cag.Builder.adopt cag lone;
  (* no edge from root: parentless non-root must be flagged *)
  match Cag.validate cag with
  | Ok () -> Alcotest.fail "unreachable vertex accepted"
  | Error _ -> ()

let test_cag_to_dot () =
  let w, a, d = H.simple_request () in
  let logs = H.logs_of_request () in
  ignore (w, a, d);
  let engine, _ = H.correlate_raw logs in
  match Core.Cag_engine.finished engine with
  | [ cag ] ->
      let dot = Cag.to_dot cag in
      Alcotest.(check bool) "digraph" true
        (String.length dot > 20 && String.sub dot 0 7 = "digraph");
      Alcotest.(check bool) "has message edge style" true (H.contains dot "style=dashed")
  | _ -> Alcotest.fail "one CAG expected"

let () =
  Alcotest.run "cag"
    [
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_deque_fifo;
          Alcotest.test_case "push_front" `Quick test_deque_push_front;
          Alcotest.test_case "promote" `Quick test_deque_promote;
          Alcotest.test_case "promote as head swap" `Quick test_deque_promote_swap;
          Alcotest.test_case "find/get/errors" `Quick test_deque_find_get;
          Alcotest.test_case "ring wraparound" `Quick test_deque_wraparound;
          qtest prop_deque_model;
        ] );
      ( "cag",
        [
          Alcotest.test_case "minimal build" `Quick test_cag_build_minimal;
          Alcotest.test_case "duration" `Quick test_cag_duration;
          Alcotest.test_case "two-parent rule" `Quick test_cag_two_parent_rule;
          Alcotest.test_case "single parent for non-receive" `Quick
            test_cag_non_receive_single_parent;
          Alcotest.test_case "double adopt rejected" `Quick test_cag_double_adopt_rejected;
          Alcotest.test_case "grow and consume" `Quick test_cag_grow_and_consume;
          Alcotest.test_case "validate unreachable" `Quick test_cag_validate_catches_unreachable;
          Alcotest.test_case "graphviz output" `Quick test_cag_to_dot;
        ] );
    ]
