test/helpers.ml: Alcotest Core Simnet String Trace
