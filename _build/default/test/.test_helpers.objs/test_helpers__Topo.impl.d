test/topo.ml: Array Core Hashtbl List Printf Simnet Trace
