(* Tests for the Project5/WAP5-style nesting baseline (extension ext-1):
   exact on sequential workloads, degrading under concurrency and skew —
   the contrast the paper draws with probabilistic correlators. *)

module H = Test_helpers.Helpers
module Nesting = Core.Nesting
module Transform = Core.Transform
module Correlator = Core.Correlator
module Accuracy = Core.Accuracy
module Scenario = Tiersim.Scenario
module Sim_time = Simnet.Sim_time

let run_spec spec =
  let outcome = Scenario.run spec in
  let prepared = Transform.apply outcome.Scenario.transform outcome.Scenario.logs in
  let paths = Nesting.infer prepared in
  let verdict = Nesting.score ~ground_truth:outcome.ground_truth paths in
  (outcome, paths, verdict)

let sequential_spec =
  (* One client: no concurrency anywhere; the baseline should be exact. *)
  { Scenario.default with Scenario.clients = 1; time_scale = 0.02; seed = 31 }

let concurrent_spec =
  { Scenario.default with Scenario.clients = 150; time_scale = 0.03; seed = 31 }

let test_nesting_exact_when_sequential () =
  let _, paths, verdict = run_spec sequential_spec in
  Alcotest.(check bool) "paths found" true (paths <> []);
  Alcotest.(check (float 0.0)) "accuracy 100% without concurrency" 1.0
    verdict.Accuracy.accuracy

let test_nesting_path_shape () =
  let _, paths, _ = run_spec sequential_spec in
  let p = List.hd paths in
  let programs =
    List.map
      (fun (v : Trace.Ground_truth.visit) -> v.context.Trace.Activity.program)
      p.Nesting.visits
  in
  Alcotest.(check (list string)) "pid-level route" [ "httpd"; "java"; "mysqld" ] programs

let test_nesting_degrades_under_concurrency () =
  let _, _, verdict = run_spec concurrent_spec in
  Alcotest.(check bool) "imprecise under concurrency" true
    (verdict.Accuracy.accuracy < 0.999);
  Alcotest.(check bool) "but far from useless" true (verdict.Accuracy.accuracy > 0.2)

let test_precisetracer_beats_nesting () =
  (* Same trace, both tracers: PreciseTracer 100%, nesting below. *)
  let outcome = Scenario.run concurrent_spec in
  let cfg = Correlator.config ~transform:outcome.Scenario.transform () in
  let result = Correlator.correlate cfg outcome.Scenario.logs in
  let precise = Accuracy.check ~ground_truth:outcome.ground_truth result.Correlator.cags in
  let prepared = Transform.apply outcome.transform outcome.logs in
  let nesting = Nesting.score ~ground_truth:outcome.ground_truth (Nesting.infer prepared) in
  Alcotest.(check (float 0.0)) "precise = 100%" 1.0 precise.Accuracy.accuracy;
  Alcotest.(check bool) "nesting strictly worse" true
    (nesting.Accuracy.accuracy < precise.Accuracy.accuracy)

let test_nesting_hurt_by_skew () =
  (* The baseline trusts timestamps; enough skew to reorder send/recv at
     merge time costs it accuracy even with modest concurrency. *)
  let spec =
    { Scenario.default with Scenario.clients = 60; time_scale = 0.03; seed = 7 }
  in
  let _, _, no_skew = run_spec spec in
  let _, _, skewed = run_spec { spec with Scenario.skew = Sim_time.ms 400 } in
  Alcotest.(check bool) "skew does not help" true
    (skewed.Accuracy.accuracy <= no_skew.Accuracy.accuracy +. 1e-9)

let test_nesting_completed_paths_only () =
  let _, paths, _ = run_spec sequential_spec in
  List.iter
    (fun (p : Nesting.path) ->
      Alcotest.(check bool) "entry is web tier" true
        (String.equal
           (List.hd p.Nesting.visits).context.Trace.Activity.program
           "httpd"))
    paths

(* ---- DPM pairwise-causality baseline ---- *)

let dpm_eval spec =
  let outcome = Scenario.run spec in
  let prepared = Transform.apply outcome.Scenario.transform outcome.Scenario.logs in
  let graph = Core.Dpm.build prepared in
  let stats = Core.Dpm.evaluate ~ground_truth:outcome.ground_truth graph in
  (graph, stats, outcome)

let test_dpm_sequential_exact () =
  (* One client: no overlap, so the pairwise graph contains exactly the
     real paths. *)
  let graph, stats, outcome = dpm_eval sequential_spec in
  Alcotest.(check bool) "graph built" true (Core.Dpm.message_count graph > 0);
  Alcotest.(check int) "one path per request"
    (Trace.Ground_truth.count outcome.Scenario.ground_truth)
    stats.Core.Dpm.paths_found;
  Alcotest.(check int) "all real" stats.paths_found stats.real_paths;
  Alcotest.(check int) "no phantoms" 0 stats.phantom_paths

let test_dpm_phantoms_under_concurrency () =
  (* Overlapping requests share entities; the pairwise graph links one
     request's input to another's output - the paper's critique. *)
  let _, stats, outcome = dpm_eval concurrent_spec in
  let requests = Trace.Ground_truth.count outcome.Scenario.ground_truth in
  Alcotest.(check bool) "more paths than requests (or truncated)" true
    (stats.Core.Dpm.paths_found > requests || stats.truncated);
  Alcotest.(check bool) "phantom paths exist" true (stats.phantom_paths > 0)

let test_dpm_enumeration_capped () =
  let outcome = Scenario.run concurrent_spec in
  let prepared = Transform.apply outcome.Scenario.transform outcome.Scenario.logs in
  let graph = Core.Dpm.build prepared in
  let stats = Core.Dpm.evaluate ~max_paths:50 ~ground_truth:outcome.ground_truth graph in
  Alcotest.(check int) "cap honoured" 50 stats.Core.Dpm.paths_found;
  Alcotest.(check bool) "truncation reported" true stats.truncated

let () =
  Alcotest.run "baseline"
    [
      ( "dpm",
        [
          Alcotest.test_case "exact when sequential" `Quick test_dpm_sequential_exact;
          Alcotest.test_case "phantoms under concurrency" `Quick
            test_dpm_phantoms_under_concurrency;
          Alcotest.test_case "enumeration cap" `Quick test_dpm_enumeration_capped;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "exact when sequential" `Quick test_nesting_exact_when_sequential;
          Alcotest.test_case "path shape" `Quick test_nesting_path_shape;
          Alcotest.test_case "degrades under concurrency" `Quick
            test_nesting_degrades_under_concurrency;
          Alcotest.test_case "PreciseTracer beats it" `Quick test_precisetracer_beats_nesting;
          Alcotest.test_case "skew does not help it" `Quick test_nesting_hurt_by_skew;
          Alcotest.test_case "paths start at the entry tier" `Quick
            test_nesting_completed_paths_only;
        ] );
    ]
